"""Repetition statistics, per the paper's methodology (§IV-D).

"We repeated each experiment 20 times and we computed the mean value
and the standard deviation of the measured performance and power
consumption.  In all the presented experiments, the standard deviation
is negligible, thus we do not report it."

:func:`run_repeated` performs the same protocol on the simulation: the
timing model is deterministic, so all run-to-run variation comes from
the meter's 0.1 % sampling noise — and the tests verify the paper's
"negligible" claim holds here too.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..benchmarks.base import Benchmark, RunResult, Version, run_version


@dataclass(frozen=True)
class RepeatedStatistics:
    """Mean/std of a repeated measurement campaign for one version."""

    benchmark: str
    version: Version
    repeats: int
    mean_elapsed_s: float
    std_elapsed_s: float
    mean_power_w: float
    std_power_w: float
    mean_energy_j: float
    std_energy_j: float

    @property
    def power_cv(self) -> float:
        """Coefficient of variation of the power readings."""
        return self.std_power_w / self.mean_power_w if self.mean_power_w else math.nan

    @property
    def negligible(self) -> bool:
        """The paper's claim: run-to-run deviation does not matter."""
        return self.power_cv < 0.005

    def describe(self) -> str:
        return (
            f"{self.benchmark} {self.version.value}: "
            f"{self.mean_elapsed_s * 1e3:.3f} ms, "
            f"{self.mean_power_w:.3f} ± {self.std_power_w * 1e3:.1f} mW "
            f"(cv {self.power_cv:.3%}, n={self.repeats})"
        )


def _stats(values: list[float]) -> tuple[float, float]:
    n = len(values)
    mean = sum(values) / n
    if n < 2:
        return mean, 0.0
    var = sum((v - mean) ** 2 for v in values) / (n - 1)
    return mean, math.sqrt(var)


def run_repeated(
    bench: Benchmark, version: Version, repeats: int = 20
) -> RepeatedStatistics:
    """Repeat one version's measurement ``repeats`` times.

    Each repetition reseeds the simulated Yokogawa meter (a fresh noise
    realization), exactly like re-running the experiment on the bench.
    Raises if the version fails (use only on runnable configurations).
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    elapsed, power, energy = [], [], []
    base_seed = bench.seed
    try:
        for i in range(repeats):
            bench.seed = base_seed + 1000 * i  # meter noise seed
            result: RunResult = run_version(bench, version=version)
            if not result.ok:
                raise RuntimeError(
                    f"{bench.name} {version.value} failed: {result.failure}"
                )
            elapsed.append(result.elapsed_s)
            power.append(result.mean_power_w)
            energy.append(result.energy_j)
    finally:
        bench.seed = base_seed
    me, se = _stats(elapsed)
    mp, sp = _stats(power)
    mj, sj = _stats(energy)
    return RepeatedStatistics(
        benchmark=bench.name,
        version=version,
        repeats=repeats,
        mean_elapsed_s=me,
        std_elapsed_s=se,
        mean_power_w=mp,
        std_power_w=sp,
        mean_energy_j=mj,
        std_energy_j=sj,
    )
