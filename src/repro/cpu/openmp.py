"""Two-core OpenMP timing model.

The OpenMP versions split the element loop across both Cortex-A15 cores.
Observed scaling in the paper is 1.2×–1.9× (mean 1.7×) — never 2× —
because of four effects, each modelled explicitly:

* **Amdahl** — per-benchmark serial fractions (hist's bucket merge,
  red's final reduction) stay on one core;
* **bandwidth contention** — two cores share the DDR3L interface and
  together sustain only ~1.4× the single-core bandwidth;
* **imbalance** — ragged per-chunk work (spmv rows) makes the slower
  core set the finish time;
* **runtime overhead** — fork/join per parallel region and per-thread
  chunk scheduling.
"""

from __future__ import annotations

import math

from ..ir.analysis import InstructionMix
from ..memory.cache import CacheHierarchy
from ..memory.dram import DramModel
from ..workload import WorkloadTraits
from .config import A15Config
from .serial import CpuTiming, _core_cycles


def time_openmp(
    mix: InstructionMix,
    n_elements: int,
    traits: WorkloadTraits,
    config: A15Config,
    dram: DramModel,
    caches: CacheHierarchy,
) -> CpuTiming:
    """Price one timed iteration of the OpenMP version on both cores.

    Thin shim over the batched :class:`~repro.cpu.pricing.CpuPricer`
    (bitwise-identical to the scalar reference ``_time_openmp_scalar``).
    """
    from .pricing import CpuPricer  # deferred: pricing imports CpuTiming

    return CpuPricer(mix, traits, config, dram, caches).price_openmp((n_elements,))[0]


def _time_openmp_scalar(
    mix: InstructionMix,
    n_elements: int,
    traits: WorkloadTraits,
    config: A15Config,
    dram: DramModel,
    caches: CacheHierarchy,
) -> CpuTiming:
    """Scalar reference implementation (property-tested against the shim)."""
    if n_elements < 1:
        raise ValueError(f"n_elements must be >= 1, got {n_elements}")
    n_cores = config.cores
    totals = mix.scaled(float(n_elements))
    totals.loop_headers += float(n_elements)

    cycles, instructions = _core_cycles(totals, config, caches, traits)
    serial_cycles = cycles * traits.serial_fraction
    parallel_cycles = cycles - serial_cycles

    # imbalance between 2 cores: expected max of per-core sums; for n/2
    # chunks per core with per-chunk cv the max exceeds the mean by
    # cv * sqrt(2 ln cores / chunks)
    imbalance = 1.0
    if traits.imbalance_cv > 0.0:
        chunks_per_core = max(n_elements / n_cores, 1.0)
        imbalance = 1.0 + traits.imbalance_cv * math.sqrt(
            2.0 * math.log(max(n_cores, 2)) / chunks_per_core
        )
    # static scheduling over large arrays behaves like few big chunks:
    # raggedness concentrates less than per-element, so floor it
    imbalance = max(imbalance, 1.0 + 0.35 * traits.imbalance_cv / math.sqrt(n_cores))

    compute_s = (
        serial_cycles + parallel_cycles / n_cores * imbalance
    ) / config.clock_hz

    traffic = caches.dram_traffic(list(traits.streams))
    dram_bytes = sum(traffic.values())
    dram_s = (
        dram.transfer_seconds("cpu2", bytes_by_pattern=traffic) if dram_bytes > 0 else 0.0
    )

    total = max(compute_s, dram_s) + (1.0 - config.mlp_overlap) * min(compute_s, dram_s)
    stall = total - compute_s

    overhead = traits.launches * (
        config.omp_region_overhead_s + n_cores * config.omp_chunk_overhead_s
    )
    total += overhead

    ipc = instructions / (total * config.clock_hz * n_cores) if total > 0 else 0.0
    return CpuTiming(
        seconds=total,
        compute_seconds=compute_s,
        mem_stall_seconds=stall,
        dram_seconds=dram_s,
        overhead_seconds=overhead,
        dram_bytes=dram_bytes,
        active_cores=n_cores,
        ipc=ipc,
    )
