"""Single-core Cortex-A15 timing from the same kernel IR.

The Serial baseline executes the scalar (naive) kernel body once per
problem element inside an ordinary ``for`` loop.  ``time_serial``
therefore prices the *uncompiled* scalar IR: per-element arithmetic
through the core's functional units, loads/stores through the L1 with
L2/DRAM penalties from the cache model, branch misprediction, and a
DRAM roofline at the single-core bandwidth cap — partly hidden by the
A15's out-of-order window.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.analysis import InstructionMix
from ..ir.dtypes import scalar_bits
from ..ir.nodes import AccessPattern, MemSpace
from ..memory.cache import CacheHierarchy
from ..memory.dram import DramModel
from ..workload import WorkloadTraits
from .config import A15Config


@dataclass(frozen=True)
class CpuTiming:
    """Timing breakdown of one timed iteration on the CPU."""

    seconds: float
    compute_seconds: float
    mem_stall_seconds: float
    dram_seconds: float
    overhead_seconds: float
    dram_bytes: float
    active_cores: int
    #: instructions-per-cycle estimate over the run (power-model input)
    ipc: float

    @property
    def dram_bandwidth(self) -> float:
        return self.dram_bytes / self.seconds if self.seconds > 0 else 0.0


def _core_cycles(
    totals: InstructionMix,
    config: A15Config,
    caches: CacheHierarchy,
    traits: WorkloadTraits,
) -> tuple[float, float]:
    """(busy cycles on one core, instruction count) for the whole mix."""
    fp_cycles = 0.0
    int_cycles = 0.0
    accum_cycles = 0.0
    instructions = 0.0
    for (op, base, width, accumulates), count in totals.arith.items():
        if accumulates and base.startswith("f"):
            # loop-carried FP dependency: no -funsafe-math-optimizations
            # means GCC may not reassociate, so the chain advances one
            # element per VFP result latency.  The chain is its own
            # serialization resource: independent work (loads, index
            # arithmetic, loop headers) executes underneath it.
            per_lane = max(config.op_cycles[op], config.accum_latency(op))
            if base == "f64":
                per_lane *= config.fp64_cost_factor
            accum_cycles += count * per_lane * width
        else:
            cycles = count * config.arith_cycles(op, base, width)
            if base.startswith("f"):
                fp_cycles += cycles
            else:
                int_cycles += cycles
        instructions += count * width

    ls_count = 0.0
    irregular_ls = 0.0
    for (kind, space, pattern, base, width, sequential, aligned), count in totals.mem.items():
        if space == MemSpace.PRIVATE:
            continue
        ls_count += count * width  # scalar code: one instruction per lane
        if pattern in (AccessPattern.STRIDED, AccessPattern.GATHER, AccessPattern.ATOMIC):
            irregular_ls += count * width
    l1_hit = caches.l1_hit_fraction(list(traits.streams))
    ls_cycles = ls_count / config.ls_ops_per_cycle
    # L1-miss latency only exposes on irregular accesses: the A15's
    # prefetchers and OoO window hide it for unit-stride streams (their
    # cost is the DRAM-bandwidth roofline, charged separately)
    ls_cycles += irregular_ls * (1.0 - l1_hit) * config.l2_hit_penalty_cycles
    # irregular accesses that miss the L2 stall the pipeline for a DRAM
    # round trip the OoO window cannot hide (dependent-address chains:
    # the naive dmmm column walk is the canonical victim)
    irregular = [
        st for st in traits.streams
        if st.pattern in (AccessPattern.STRIDED, AccessPattern.GATHER, AccessPattern.ATOMIC)
    ]
    if irregular and irregular_ls > 0.0:
        requested = sum(st.requested_bytes for st in irregular)
        if requested > 0.0:
            traffic = caches.dram_traffic(list(traits.streams))
            irregular_dram = traffic.get(AccessPattern.STRIDED, 0.0) + traffic.get(
                AccessPattern.GATHER, 0.0
            ) + traffic.get(AccessPattern.ATOMIC, 0.0)
            miss_frac = min(irregular_dram / requested, 1.0)
            ls_cycles += irregular_ls * miss_frac * config.dram_miss_penalty_cycles
    instructions += ls_count

    branch_cycles = (
        totals.branches * config.mispredict_rate
        + totals.divergent_branches * (config.divergent_mispredict_rate - config.mispredict_rate)
    ) * config.mispredict_penalty
    loop_cycles = totals.loop_headers * config.loop_header_cycles
    call_cycles = totals.calls * config.call_cycles
    atomic_cycles = totals.atomic_ops() * config.atomic_cycles
    instructions += totals.branches + totals.loop_headers + totals.calls + totals.atomic_ops()

    # FP, integer, LS and the FP dependency chain overlap on an OoO
    # core: the busiest resource dominates; a fraction of the rest
    # leaks past the overlap; serialization costs (mispredicts, calls,
    # atomics) add.  Loop headers overlap like integer work when a
    # dependency chain dominates.
    busy = max(fp_cycles, int_cycles + loop_cycles, ls_cycles, accum_cycles)
    leak = 0.25 * (fp_cycles + int_cycles + loop_cycles + ls_cycles + accum_cycles - busy)
    cycles = busy + leak + branch_cycles + call_cycles + atomic_cycles
    return cycles, instructions


def time_serial(
    mix: InstructionMix,
    n_elements: int,
    traits: WorkloadTraits,
    config: A15Config,
    dram: DramModel,
    caches: CacheHierarchy,
) -> CpuTiming:
    """Price one timed iteration of the Serial version.

    ``mix`` is the per-element instruction mix (the scalar kernel IR
    analyzed as-is); ``n_elements`` is the element count of one timed
    iteration; ``traits.streams`` describe that iteration's footprints.

    Thin shim over the batched :class:`~repro.cpu.pricing.CpuPricer`
    (bitwise-identical to the scalar reference ``_time_serial_scalar``);
    sweeps pricing many cells should hold a pricer or go through
    :class:`~repro.cpu.pricing.CpuPricingModel` to amortize its tables.
    """
    from .pricing import CpuPricer  # deferred: pricing imports CpuTiming

    return CpuPricer(mix, traits, config, dram, caches).price_serial((n_elements,))[0]


def _time_serial_scalar(
    mix: InstructionMix,
    n_elements: int,
    traits: WorkloadTraits,
    config: A15Config,
    dram: DramModel,
    caches: CacheHierarchy,
) -> CpuTiming:
    """Scalar reference implementation (property-tested against the shim)."""
    if n_elements < 1:
        raise ValueError(f"n_elements must be >= 1, got {n_elements}")
    totals = mix.scaled(float(n_elements))
    # the serial element loop itself
    totals.loop_headers += float(n_elements)

    cycles, instructions = _core_cycles(totals, config, caches, traits)
    compute_s = cycles / config.clock_hz

    traffic = caches.dram_traffic(list(traits.streams))
    dram_bytes = sum(traffic.values())
    dram_s = (
        dram.transfer_seconds("cpu1", bytes_by_pattern=traffic) if dram_bytes > 0 else 0.0
    )

    # The OoO window overlaps compute with outstanding misses; the
    # non-dominant component leaks past the overlap by (1 - mlp_overlap)
    total = max(compute_s, dram_s) + (1.0 - config.mlp_overlap) * min(compute_s, dram_s)
    stall = total - compute_s

    ipc = instructions / (total * config.clock_hz) if total > 0 else 0.0
    return CpuTiming(
        seconds=total,
        compute_seconds=compute_s,
        mem_stall_seconds=stall,
        dram_seconds=dram_s,
        overhead_seconds=0.0,
        dram_bytes=dram_bytes,
        active_cores=1,
        ipc=ipc,
    )
