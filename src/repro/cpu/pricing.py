"""Batched CPU pricing: Serial and OpenMP timings over many cells.

``CpuPricer`` generalizes the GPU :class:`~repro.mali.timing.LaunchPricer`
pattern to the Cortex-A15 models: everything that does not depend on the
element count — the per-entry (count, cost) columns of the instruction
mix, the L1 hit fraction, the DRAM traffic and its transfer time — is
hoisted once per (mix, traits) pair, and ``_core_cycles`` is evaluated
for a whole vector of element counts in one 2-D NumPy pass.

Bitwise contract (same as the GPU pricer): elementwise float64 products
are IEEE-identical to the scalar ``(count*n) * cost`` expressions, every
reduction is a sequential accumulation in source dict order — never
``np.sum`` — and terms the scalar path skips behind ``> 0`` guards are
added as exact ``0.0`` (IEEE-identical on non-negative partial sums).
The OpenMP imbalance epilogue calls ``math.sqrt``/``math.log`` and stays
scalar per cell: routing those through libm-equivalent NumPy ufuncs is
*not* guaranteed bit-identical, and the epilogue is O(1) per cell anyway.
"""

from __future__ import annotations

import math
from dataclasses import fields

from ..ir.analysis import InstructionMix
from ..ir.nodes import AccessPattern, MemSpace
from ..memory.cache import CacheHierarchy
from ..memory.dram import DramModel
from ..workload import WorkloadTraits
from .config import A15Config
from .serial import CpuTiming

#: ``CpuCell.mode`` values
MODE_SERIAL = "serial"
MODE_OPENMP = "openmp"

_IRREGULAR = (AccessPattern.STRIDED, AccessPattern.GATHER, AccessPattern.ATOMIC)

#: element-count batches below which the scalar per-count loops beat
#: the 2-D NumPy pass (both are bitwise-identical)
_BULK_THRESHOLD = 32


class _CpuTables:
    """Per-entry columns of one per-element mix, in source dict order.

    Columns are plain Python lists — small batches price fastest through
    scalar loops — with NumPy views materialized on demand for the 2-D
    bulk pass (:meth:`arrays`).
    """

    __slots__ = (
        "acc_counts",
        "acc_perlane",
        "acc_widths",
        "fp_counts",
        "fp_costs",
        "int_counts",
        "int_costs",
        "a_counts",
        "a_widths",
        "m_counts",
        "m_widths",
        "ir_counts",
        "ir_widths",
        "ato_counts",
        "_arrays",
    )

    def __init__(self, mix: InstructionMix, config: A15Config) -> None:
        acc_counts: list[float] = []
        acc_perlane: list[float] = []
        acc_widths: list[float] = []
        fp_counts: list[float] = []
        fp_costs: list[float] = []
        int_counts: list[float] = []
        int_costs: list[float] = []
        a_counts: list[float] = []
        a_widths: list[float] = []
        for (op, base, width, accumulates), count in mix.arith.items():
            if accumulates and base.startswith("f"):
                per_lane = max(config.op_cycles[op], config.accum_latency(op))
                if base == "f64":
                    per_lane *= config.fp64_cost_factor
                acc_counts.append(count)
                acc_perlane.append(per_lane)
                acc_widths.append(float(width))
            elif base.startswith("f"):
                fp_counts.append(count)
                fp_costs.append(config.arith_cycles(op, base, width))
            else:
                int_counts.append(count)
                int_costs.append(config.arith_cycles(op, base, width))
            a_counts.append(count)
            a_widths.append(float(width))
        m_counts: list[float] = []
        m_widths: list[float] = []
        ir_counts: list[float] = []
        ir_widths: list[float] = []
        for (kind, space, pattern, base, width, sequential, aligned), count in mix.mem.items():
            if space == MemSpace.PRIVATE:
                continue
            m_counts.append(count)
            m_widths.append(float(width))
            if pattern in _IRREGULAR:
                ir_counts.append(count)
                ir_widths.append(float(width))
        self.acc_counts = acc_counts
        self.acc_perlane = acc_perlane
        self.acc_widths = acc_widths
        self.fp_counts = fp_counts
        self.fp_costs = fp_costs
        self.int_counts = int_counts
        self.int_costs = int_costs
        self.a_counts = a_counts
        self.a_widths = a_widths
        self.m_counts = m_counts
        self.m_widths = m_widths
        self.ir_counts = ir_counts
        self.ir_widths = ir_widths
        self.ato_counts = [float(c) for c in mix.atomics.values()]
        self._arrays: tuple | None = None

    def arrays(self) -> tuple:
        """float64 column views for the 2-D bulk pass, built on demand."""
        if self._arrays is None:
            import numpy as np

            self._arrays = tuple(
                np.asarray(col, dtype=np.float64)
                for col in (
                    self.acc_counts,
                    self.acc_perlane,
                    self.acc_widths,
                    self.fp_counts,
                    self.fp_costs,
                    self.int_counts,
                    self.int_costs,
                    self.a_counts,
                    self.a_widths,
                    self.m_counts,
                    self.m_widths,
                    self.ir_counts,
                    self.ir_widths,
                    self.ato_counts,
                )
            )
        return self._arrays


def _cpu_tables_for(mix: InstructionMix, config: A15Config) -> _CpuTables:
    """The shared :class:`_CpuTables` of one (mix, config) pair.

    A pure derived constant, cached in the mix's instance dict keyed by
    config identity (the identity check pins the config object); every
    pricer of that mix — batched grids and one-shot ``time_serial`` /
    ``time_openmp`` calls alike — shares one build.  Stripped on pickle
    (see :meth:`InstructionMix.__getstate__`).
    """
    cache = mix.__dict__.get("_cpu_tables")
    if cache is None:
        cache = {}
        object.__setattr__(mix, "_cpu_tables", cache)
    entry = cache.get(id(config))
    if entry is None or entry[0] is not config:
        entry = cache[id(config)] = (config, _CpuTables(mix, config))
    return entry[1]


#: (l1 config, l2 config, dram config) -> {streams: (l1 hit fraction,
#: traffic items, dram bytes, irregular miss fraction, per-agent
#: transfer seconds)}.  All pure functions of the frozen configs and
#: the traits' stream tuple, shared across every pricer of a grid.
_STREAM_TABLES: dict[tuple, dict] = {}


def _stream_tables(dram: DramModel, caches: CacheHierarchy) -> dict:
    key = (caches.l1.config, caches.l2.config, dram.config)
    found = _STREAM_TABLES.get(key)
    if found is None:
        found = _STREAM_TABLES[key] = {}
    return found


def _seq_outer(counts, ns, *factors):
    """Sequential row accumulation of ``((counts*n) * f0) * f1...`` terms.

    Axis 0 is the mix-entry axis; accumulating row by row gives every
    lane its additions in exactly the order the scalar dict loop performs
    them.
    """
    import numpy as np

    acc = np.zeros(len(ns))
    if not counts.size:
        return acc
    terms = counts[:, None] * ns[None, :]
    for f in factors:
        terms = terms * f[:, None]
    for row in terms:
        acc += row
    return acc


class CpuPricer:
    """Batched Serial/OpenMP pricing of one per-element mix.

    One pricer covers both modes: ``_core_cycles`` sees identical inputs
    for Serial and OpenMP, so the vectorized core runs once per distinct
    vector of element counts and only the epilogues differ.
    """

    def __init__(
        self,
        mix: InstructionMix,
        traits: WorkloadTraits,
        config: A15Config,
        dram: DramModel,
        caches: CacheHierarchy,
        stream_tables: dict | None = None,
    ) -> None:
        self.mix = mix
        self.traits = traits
        self.config = config
        self.dram = dram
        self.caches = caches
        self._tables = _cpu_tables_for(mix, config)
        tables = stream_tables if stream_tables is not None else _stream_tables(dram, caches)
        entry = tables.get(traits.streams)
        if entry is None:
            streams = list(traits.streams)
            l1_hit = caches.l1_hit_fraction(streams)
            traffic = caches.dram_traffic(streams)
            dram_bytes = sum(traffic.values())
            # the guarded irregular-miss penalty: its scale factor does
            # not depend on the element count, so it reduces to one
            # group scalar
            irregular = [st for st in streams if st.pattern in _IRREGULAR]
            miss_frac: float | None = None
            if irregular:
                requested = sum(st.requested_bytes for st in irregular)
                if requested > 0.0:
                    irregular_dram = traffic.get(AccessPattern.STRIDED, 0.0) + traffic.get(
                        AccessPattern.GATHER, 0.0
                    ) + traffic.get(AccessPattern.ATOMIC, 0.0)
                    miss_frac = min(irregular_dram / requested, 1.0)
            entry = tables[traits.streams] = (
                l1_hit,
                tuple(traffic.items()),
                dram_bytes,
                miss_frac,
                {},
            )
        self._l1_hit, items, self._dram_bytes, self._miss_frac, self._dram_s = entry
        self._traffic = dict(items)

    def _agent_dram_s(self, agent: str) -> float:
        found = self._dram_s.get(agent)
        if found is None:
            found = self._dram_s[agent] = (
                self.dram.transfer_seconds(agent, bytes_by_pattern=self._traffic)
                if self._dram_bytes > 0
                else 0.0
            )
        return found

    # ------------------------------------------------------------------
    def _core_cycles_bulk(self, ns):
        """Vectorized ``serial._core_cycles`` over element counts ``ns``.

        ``ns`` already includes nothing: the serial element loop header
        (``totals.loop_headers += n``) is applied here, exactly where the
        scalar path applies it — before any loop-header consumer.
        """
        import numpy as np

        (
            acc_counts,
            acc_perlane,
            acc_widths,
            fp_counts,
            fp_costs,
            int_counts,
            int_costs,
            a_counts,
            a_widths,
            m_counts,
            m_widths,
            ir_counts,
            ir_widths,
            ato_counts,
        ) = self._tables.arrays()
        config = self.config
        mix = self.mix

        accum = _seq_outer(acc_counts, ns, acc_perlane, acc_widths)
        fp = _seq_outer(fp_counts, ns, fp_costs)
        int_ = _seq_outer(int_counts, ns, int_costs)
        instructions = _seq_outer(a_counts, ns, a_widths)

        ls_count = _seq_outer(m_counts, ns, m_widths)
        irregular_ls = _seq_outer(ir_counts, ns, ir_widths)
        ls = ls_count / config.ls_ops_per_cycle
        ls = ls + ((irregular_ls * (1.0 - self._l1_hit)) * config.l2_hit_penalty_cycles)
        if self._miss_frac is not None:
            ls = ls + ((irregular_ls * self._miss_frac) * config.dram_miss_penalty_cycles)
        instructions = instructions + ls_count

        branches = mix.branches * ns
        divergent = mix.divergent_branches * ns
        loop_headers = (mix.loop_headers * ns) + ns  # + the element loop
        calls = mix.calls * ns
        atomic_ops = _seq_outer(ato_counts, ns)

        branch_cycles = (
            branches * config.mispredict_rate
            + divergent * (config.divergent_mispredict_rate - config.mispredict_rate)
        ) * config.mispredict_penalty
        loop_cycles = loop_headers * config.loop_header_cycles
        call_cycles = calls * config.call_cycles
        atomic_cycles = atomic_ops * config.atomic_cycles
        instructions = instructions + (((branches + loop_headers) + calls) + atomic_ops)

        il = int_ + loop_cycles
        busy = np.maximum(np.maximum(np.maximum(fp, il), ls), accum)
        leak = 0.25 * (((((fp + int_) + loop_cycles) + ls) + accum) - busy)
        cycles = (((busy + leak) + branch_cycles) + call_cycles) + atomic_cycles
        return cycles, instructions

    def _core_cycles_one(self, n: float) -> tuple[float, float]:
        """Scalar twin of :meth:`_core_cycles_bulk` for one element count.

        Every product and every sequential addition is the same IEEE-754
        double operation the bulk pass performs lane-wise, in the same
        order, so the two paths agree bit for bit — and below the ufunc
        dispatch overhead the scalar loops win on small batches.
        """
        t = self._tables
        config = self.config
        mix = self.mix

        accum = 0.0
        for count, per_lane, width in zip(t.acc_counts, t.acc_perlane, t.acc_widths):
            accum += ((count * n) * per_lane) * width
        fp = 0.0
        for count, cost in zip(t.fp_counts, t.fp_costs):
            fp += (count * n) * cost
        int_ = 0.0
        for count, cost in zip(t.int_counts, t.int_costs):
            int_ += (count * n) * cost
        instructions = 0.0
        for count, width in zip(t.a_counts, t.a_widths):
            instructions += (count * n) * width

        ls_count = 0.0
        for count, width in zip(t.m_counts, t.m_widths):
            ls_count += (count * n) * width
        irregular_ls = 0.0
        for count, width in zip(t.ir_counts, t.ir_widths):
            irregular_ls += (count * n) * width
        ls = ls_count / config.ls_ops_per_cycle
        ls = ls + ((irregular_ls * (1.0 - self._l1_hit)) * config.l2_hit_penalty_cycles)
        if self._miss_frac is not None:
            ls = ls + ((irregular_ls * self._miss_frac) * config.dram_miss_penalty_cycles)
        instructions = instructions + ls_count

        branches = mix.branches * n
        divergent = mix.divergent_branches * n
        loop_headers = (mix.loop_headers * n) + n  # + the element loop
        calls = mix.calls * n
        atomic_ops = 0.0
        for count in t.ato_counts:
            atomic_ops += count * n

        branch_cycles = (
            branches * config.mispredict_rate
            + divergent * (config.divergent_mispredict_rate - config.mispredict_rate)
        ) * config.mispredict_penalty
        loop_cycles = loop_headers * config.loop_header_cycles
        call_cycles = calls * config.call_cycles
        atomic_cycles = atomic_ops * config.atomic_cycles
        instructions = instructions + (((branches + loop_headers) + calls) + atomic_ops)

        il = int_ + loop_cycles
        busy = max(max(max(fp, il), ls), accum)
        leak = 0.25 * (((((fp + int_) + loop_cycles) + ls) + accum) - busy)
        cycles = (((busy + leak) + branch_cycles) + call_cycles) + atomic_cycles
        return cycles, instructions

    def _core_cycles_for(self, counts: list[int]):
        """(cycles, instructions) sequences for validated counts —
        scalar loops below :data:`_BULK_THRESHOLD`, the 2-D pass above."""
        if len(counts) < _BULK_THRESHOLD:
            cycles: list[float] = []
            instructions: list[float] = []
            for n in counts:
                c, i = self._core_cycles_one(float(n))
                cycles.append(c)
                instructions.append(i)
            return cycles, instructions
        import numpy as np

        ns = np.asarray([float(n) for n in counts], dtype=np.float64)
        return self._core_cycles_bulk(ns)

    def _prepare(self, n_values) -> list[int]:
        counts = [int(n) for n in n_values]
        for n in counts:
            if n < 1:
                raise ValueError(f"n_elements must be >= 1, got {n}")
        return counts

    def price_serial(self, n_values) -> tuple[CpuTiming, ...]:
        """Serial timings for each element count, bitwise ``time_serial``."""
        counts = self._prepare(n_values)
        cycles_seq, instr_seq = self._core_cycles_for(counts)
        config = self.config
        dram_s = self._agent_dram_s("cpu1")
        out = []
        for j in range(len(counts)):
            cycles = float(cycles_seq[j])
            instructions = float(instr_seq[j])
            compute_s = cycles / config.clock_hz
            total = max(compute_s, dram_s) + (
                (1.0 - config.mlp_overlap) * min(compute_s, dram_s)
            )
            stall = total - compute_s
            ipc = instructions / (total * config.clock_hz) if total > 0 else 0.0
            out.append(
                CpuTiming(
                    seconds=total,
                    compute_seconds=compute_s,
                    mem_stall_seconds=stall,
                    dram_seconds=dram_s,
                    overhead_seconds=0.0,
                    dram_bytes=self._dram_bytes,
                    active_cores=1,
                    ipc=ipc,
                )
            )
        return tuple(out)

    def price_openmp(self, n_values) -> tuple[CpuTiming, ...]:
        """OpenMP timings for each element count, bitwise ``time_openmp``.

        The core cycles come from the shared scalar-or-vectorized pass;
        the imbalance/overhead epilogue is scalar per cell (see module
        docstring for why the transcendentals stay on ``math``).
        """
        counts = self._prepare(n_values)
        cycles_arr, instr_arr = self._core_cycles_for(counts)
        config = self.config
        n_cores = config.cores
        dram_s = self._agent_dram_s("cpu2")
        out = []
        for j, n_elements in enumerate(counts):
            cycles = float(cycles_arr[j])
            instructions = float(instr_arr[j])
            serial_cycles = cycles * self.traits.serial_fraction
            parallel_cycles = cycles - serial_cycles
            imbalance = 1.0
            if self.traits.imbalance_cv > 0.0:
                chunks_per_core = max(n_elements / n_cores, 1.0)
                imbalance = 1.0 + self.traits.imbalance_cv * math.sqrt(
                    2.0 * math.log(max(n_cores, 2)) / chunks_per_core
                )
            imbalance = max(imbalance, 1.0 + 0.35 * self.traits.imbalance_cv / math.sqrt(n_cores))
            compute_s = (serial_cycles + parallel_cycles / n_cores * imbalance) / config.clock_hz
            total = max(compute_s, dram_s) + (1.0 - config.mlp_overlap) * min(compute_s, dram_s)
            stall = total - compute_s
            overhead = self.traits.launches * (
                config.omp_region_overhead_s + n_cores * config.omp_chunk_overhead_s
            )
            total += overhead
            ipc = instructions / (total * config.clock_hz * n_cores) if total > 0 else 0.0
            out.append(
                CpuTiming(
                    seconds=total,
                    compute_seconds=compute_s,
                    mem_stall_seconds=stall,
                    dram_seconds=dram_s,
                    overhead_seconds=overhead,
                    dram_bytes=self._dram_bytes,
                    active_cores=n_cores,
                    ipc=ipc,
                )
            )
        return tuple(out)

    def price_mode(self, mode: str, n_values) -> tuple[CpuTiming, ...]:
        """Dispatch on a :class:`~repro.pricing.CpuCell` mode string."""
        if mode == MODE_SERIAL:
            return self.price_serial(n_values)
        if mode == MODE_OPENMP:
            return self.price_openmp(n_values)
        raise ValueError(f"unknown CPU pricing mode {mode!r}")


class CpuPricingModel:
    """Batched :class:`~repro.pricing.PricingModel` over CPU cells.

    Groups cells by (mix, traits) — one :class:`CpuPricer` per group —
    then prices each mode's element counts in one vectorized pass.
    """

    def __init__(self, config: A15Config, dram: DramModel, caches: CacheHierarchy):
        self.config = config
        self.dram = dram
        self.caches = caches
        self._pricers: dict[tuple[int, int], CpuPricer] = {}
        # shared per-stream-mix tables, resolved once per facade
        self._streams = _stream_tables(dram, caches)

    def pricer(self, mix: InstructionMix, traits: WorkloadTraits) -> CpuPricer:
        """The shared :class:`CpuPricer` for one (mix, traits) pair."""
        gk = (id(mix), id(traits))
        found = self._pricers.get(gk)
        if found is None:
            found = self._pricers[gk] = CpuPricer(
                mix, traits, self.config, self.dram, self.caches,
                stream_tables=self._streams,
            )
        return found

    def price(self, cells) -> tuple[CpuTiming, ...]:
        """Timings for each :class:`~repro.pricing.CpuCell`."""
        cells = tuple(cells)
        grouped: dict[tuple[int, int, str], list[int]] = {}
        for i, cell in enumerate(cells):
            gk = (id(cell.mix), id(cell.traits), cell.mode)
            grouped.setdefault(gk, []).append(i)
        out: list[CpuTiming | None] = [None] * len(cells)
        for (_, _, mode), idxs in grouped.items():
            first = cells[idxs[0]]
            pricer = self.pricer(first.mix, first.traits)
            timings = pricer.price_mode(mode, [cells[i].n_elements for i in idxs])
            for j, i in enumerate(idxs):
                out[i] = timings[j]
        return tuple(out)  # type: ignore[arg-type]

    def price_one(self, cell) -> CpuTiming:
        """Single-cell convenience (same vectorized tables)."""
        return self.price((cell,))[0]


# ---------------------------------------------------------------------------
# Config-axis stacking (design-space sweeps)

#: A15Config fields a :class:`CpuConfigStack` treats as sweepable axes.
#: They appear only in the Serial/OpenMP epilogues — never inside
#: ``_core_cycles`` — so the hoisted cycle/instruction columns stay valid
#: across every variant.
_CPU_STACK_AXES = frozenset(
    {"cores", "clock_hz", "mlp_overlap", "omp_region_overhead_s", "omp_chunk_overhead_s"}
)


def _cpu_stack_signature(config: A15Config) -> tuple:
    """The config fields a stack bakes into its hoisted cycle columns."""
    return tuple(
        (f.name, getattr(config, f.name))
        for f in fields(config)
        if f.name not in _CPU_STACK_AXES
    )


class CpuStackRows:
    """Row arrays of one (config, dram) design point over a cell stack.

    One lane per cell, aligned with the stack's cell order.  CPU cells
    have no feasibility axis — every config prices every cell.
    """

    __slots__ = ("seconds", "ipc", "active_cores", "dram_bandwidth", "dram_bytes")

    def __init__(self, seconds, ipc, active_cores, dram_bandwidth, dram_bytes):
        self.seconds = seconds
        self.ipc = ipc
        self.active_cores = active_cores
        self.dram_bandwidth = dram_bandwidth
        self.dram_bytes = dram_bytes


class CpuConfigStack:
    """Config-axis vectorization of a fixed set of CPU cells.

    The core cycle/instruction counts of every cell are config-invariant
    across the swept axes (:data:`_CPU_STACK_AXES`), so they are computed
    once through the shared :class:`CpuPricer` machinery; each
    :meth:`rows` call replays only the Serial/OpenMP epilogues as
    whole-stack array passes.  Every lane is bitwise-identical to pricing
    the cell through a per-config :class:`CpuPricingModel` facade — the
    array expressions mirror the scalar epilogues operation by operation
    (``math.log``/``math.sqrt`` of config scalars stay on ``math``; only
    per-cell arithmetic is vectorized).
    """

    def __init__(
        self,
        cells,
        config: A15Config,
        dram: DramModel,
        caches: CacheHierarchy,
    ) -> None:
        import numpy as np

        cells = tuple(cells)
        if not cells:
            raise ValueError("CpuConfigStack needs at least one cell")
        for cell in cells:
            if cell.mode not in (MODE_SERIAL, MODE_OPENMP):
                raise ValueError(f"unknown CPU pricing mode {cell.mode!r}")
        self.cells = cells
        self.config = config
        self.dram = dram
        self.caches = caches
        self._sig = _cpu_stack_signature(config)
        self._model = CpuPricingModel(config, dram, caches)

        group_ord: dict[tuple[int, int], int] = {}
        self._group_pricers: list[CpuPricer] = []
        group_cells: list[list[int]] = []
        gidx: list[int] = []
        for i, cell in enumerate(cells):
            pricer = self._model.pricer(cell.mix, cell.traits)
            gk = (id(cell.mix), id(cell.traits))
            g = group_ord.get(gk)
            if g is None:
                g = group_ord[gk] = len(self._group_pricers)
                self._group_pricers.append(pricer)
                group_cells.append([])
            group_cells[g].append(i)
            gidx.append(g)
        self._gidx = np.asarray(gidx, dtype=np.intp)

        width = len(cells)
        cyc = np.empty(width)
        instr = np.empty(width)
        dram_bytes = np.empty(width)
        for g, pricer in enumerate(self._group_pricers):
            idxs = group_cells[g]
            counts = pricer._prepare([cells[i].n_elements for i in idxs])
            cyc_seq, instr_seq = pricer._core_cycles_for(counts)
            for j, i in enumerate(idxs):
                cyc[i] = float(cyc_seq[j])
                instr[i] = float(instr_seq[j])
                dram_bytes[i] = float(pricer._dram_bytes)
        self._cycles = cyc
        self._instructions = instr
        self._dram_bytes = dram_bytes

        self._n_f = np.asarray([float(int(c.n_elements)) for c in cells])
        self._cv = np.asarray([c.traits.imbalance_cv for c in cells])
        self._sf = np.asarray([c.traits.serial_fraction for c in cells])
        self._launches = np.asarray([float(c.traits.launches) for c in cells])
        self._serial = np.asarray(
            [i for i, c in enumerate(cells) if c.mode == MODE_SERIAL], dtype=np.intp
        )
        self._openmp = np.asarray(
            [i for i, c in enumerate(cells) if c.mode == MODE_OPENMP], dtype=np.intp
        )
        # dram.config -> (cpu1 dram_s per cell, cpu2 dram_s per cell)
        self._dram_cache: dict = {}

    # ------------------------------------------------------------------
    def _dram_for(self, dram: DramModel) -> tuple:
        import numpy as np

        found = self._dram_cache.get(dram.config)
        if found is None:
            # a throwaway pricer per group reuses (and fills) the same
            # process-global stream tables a facade on this DRAM would
            tables = _stream_tables(dram, self.caches)
            s1 = []
            s2 = []
            for pricer in self._group_pricers:
                p = CpuPricer(
                    pricer.mix, pricer.traits, self.config, dram, self.caches,
                    stream_tables=tables,
                )
                s1.append(p._agent_dram_s("cpu1"))
                s2.append(p._agent_dram_s("cpu2"))
            found = self._dram_cache[dram.config] = (
                np.asarray(s1, dtype=np.float64)[self._gidx],
                np.asarray(s2, dtype=np.float64)[self._gidx],
            )
        return found

    # ------------------------------------------------------------------
    def rows(self, config: A15Config, dram: DramModel) -> CpuStackRows:
        """Price every cell under one ``(config, dram)`` design point."""
        import numpy as np

        if _cpu_stack_signature(config) != self._sig:
            raise ValueError(
                "config differs from the stack base outside the stacked axes "
                f"({', '.join(sorted(_CPU_STACK_AXES))})"
            )
        ds_serial, ds_openmp = self._dram_for(dram)
        clock = config.clock_hz
        n_cores = config.cores
        width = len(self.cells)
        seconds = np.empty(width)
        ipc = np.empty(width)
        active = np.empty(width, dtype=np.int64)

        si = self._serial
        if si.size:
            cyc = self._cycles[si]
            instr = self._instructions[si]
            ds = ds_serial[si]
            compute_s = cyc / clock
            total = np.maximum(compute_s, ds) + (
                (1.0 - config.mlp_overlap) * np.minimum(compute_s, ds)
            )
            with np.errstate(divide="ignore", invalid="ignore"):
                rate = instr / (total * clock)
            seconds[si] = total
            ipc[si] = np.where(total > 0, rate, 0.0)
            active[si] = 1

        oi = self._openmp
        if oi.size:
            cyc = self._cycles[oi]
            instr = self._instructions[oi]
            ds = ds_openmp[oi]
            cv = self._cv[oi]
            serial_cycles = cyc * self._sf[oi]
            parallel_cycles = cyc - serial_cycles
            log_cores = math.log(max(n_cores, 2))
            sqrt_cores = math.sqrt(n_cores)
            chunks = np.maximum(self._n_f[oi] / n_cores, 1.0)
            imbalance = np.where(
                cv > 0.0,
                1.0 + cv * np.sqrt((2.0 * log_cores) / chunks),
                1.0,
            )
            imbalance = np.maximum(imbalance, 1.0 + (0.35 * cv) / sqrt_cores)
            compute_s = (serial_cycles + (parallel_cycles / n_cores) * imbalance) / clock
            total = np.maximum(compute_s, ds) + (
                (1.0 - config.mlp_overlap) * np.minimum(compute_s, ds)
            )
            overhead = self._launches[oi] * (
                config.omp_region_overhead_s + n_cores * config.omp_chunk_overhead_s
            )
            total = total + overhead
            with np.errstate(divide="ignore", invalid="ignore"):
                rate = instr / (total * clock * n_cores)
            seconds[oi] = total
            ipc[oi] = np.where(total > 0, rate, 0.0)
            active[oi] = n_cores

        with np.errstate(divide="ignore", invalid="ignore"):
            bw = self._dram_bytes / seconds
        dram_bw = np.where(seconds > 0, bw, 0.0)
        return CpuStackRows(seconds, ipc, active, dram_bw, self._dram_bytes)
