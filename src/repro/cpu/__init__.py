"""Cortex-A15 CPU models: serial and OpenMP baselines."""

from .config import A15Config, DEFAULT_CPU_OP_CYCLES
from .openmp import time_openmp
from .serial import CpuTiming, time_serial

__all__ = ["A15Config", "CpuTiming", "DEFAULT_CPU_OP_CYCLES", "time_openmp", "time_serial"]
