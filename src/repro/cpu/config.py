"""Cortex-A15 core parameters (Exynos 5250: dual core @ 1.7 GHz).

The paper's Serial and OpenMP baselines run scalar code: "the ARM
Cortex-A15 CPU does not incorporate a double-precision SIMD unit and
full IEEE-754-2008 floating-point vector support", and GCC's
auto-vectorizer was not allowed to emit NEON FP anyway.  The model
therefore prices one VFP operation per FP instruction — the key reason
a well-vectorized Mali kernel can beat the core by > 20×.

Cost tables follow the A15's published pipeline characteristics: a
3-wide out-of-order core sustaining ~2 simple integer ops/cycle, one
VFP FMA/cycle (fp32 and fp64 — the VFP is 64-bit), long-latency
iterative divide/sqrt, and libm-call costs for transcendentals.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import CalibrationError
from ..ir.nodes import OpKind

#: cycles per *scalar* op on the A15, by op kind and float/int class
DEFAULT_CPU_OP_CYCLES: dict[OpKind, float] = {
    OpKind.ADD: 1.0,
    OpKind.MUL: 1.0,
    OpKind.FMA: 1.0,
    OpKind.MOV: 0.5,
    OpKind.CMP: 0.5,
    OpKind.BITOP: 0.5,
    OpKind.CVT: 1.0,
    # the VFP divide/sqrt units are iterative and non-pipelined; a
    # scalar 1/sqrt is a VSQRT followed by a VDIV; transcendentals go
    # through scalar libm
    OpKind.DIV: 18.0,
    OpKind.SQRT: 60.0,
    OpKind.RSQRT: 100.0,
    OpKind.EXP: 90.0,
    OpKind.LOG: 90.0,
    OpKind.SIN: 100.0,
}


@dataclass(frozen=True)
class A15Config:
    """Calibrated Cortex-A15 description."""

    clock_hz: float = 1.7e9
    cores: int = 2
    #: sustained scalar integer ops per cycle (dual-issue ALU)
    int_ops_per_cycle: float = 2.0
    #: sustained scalar FP ops per cycle through the VFP
    fp_ops_per_cycle: float = 1.0
    #: fp64 throughput penalty (VFP is 64-bit: only slightly slower)
    fp64_cost_factor: float = 1.25
    #: L1-hit loads/stores retired per cycle
    ls_ops_per_cycle: float = 1.0
    #: extra cycles per access that hits L2 rather than L1
    l2_hit_penalty_cycles: float = 6.0
    #: exposed stall cycles per irregular access that misses all the way
    #: to DRAM (dependent-address chains defeat the OoO window)
    dram_miss_penalty_cycles: float = 25.0
    #: branch misprediction penalty (cycles) and base mispredict rate
    mispredict_penalty: float = 15.0
    mispredict_rate: float = 0.03
    #: mispredict rate for data-dependent ("divergent") branches
    divergent_mispredict_rate: float = 0.20
    #: fraction of DRAM stall time hidden by out-of-order execution
    mlp_overlap: float = 0.35
    #: result latency of a chained FP add (VADD) in cycles; exposed
    #: when the compiler may not reassociate FP reductions
    fp_add_latency: float = 4.0
    #: result latency of a chained multiply-accumulate (VMLA): the A15
    #: VFP has no fast accumulator forwarding path
    fp_mac_latency: float = 8.0
    #: loop header cost per iteration (inc+cmp+predicted branch)
    loop_header_cycles: float = 1.0
    #: function-call overhead when not inlined
    call_cycles: float = 8.0
    #: atomic RMW cost (ldrex/strex round trip through L1/L2)
    atomic_cycles: float = 25.0
    op_cycles: dict[OpKind, float] = field(default_factory=lambda: dict(DEFAULT_CPU_OP_CYCLES))

    # OpenMP runtime ----------------------------------------------------
    #: fork+join cost of one parallel region, seconds
    omp_region_overhead_s: float = 9e-6
    #: per-thread scheduling overhead inside a region, seconds
    omp_chunk_overhead_s: float = 1.5e-6

    def __post_init__(self) -> None:
        if self.clock_hz <= 0 or self.cores < 1:
            raise CalibrationError("A15 clock/cores invalid")
        missing = [op for op in OpKind if op not in self.op_cycles]
        if missing:
            raise CalibrationError(f"op_cycles missing entries for {missing}")

    def accum_latency(self, op: OpKind) -> float:
        """Chain latency for an accumulating op of this kind."""
        return self.fp_mac_latency if op is OpKind.FMA else self.fp_add_latency

    def arith_cycles(self, op: OpKind, base: str, width: int) -> float:
        """Cycles for one IR op executed as ``width`` scalar instructions.

        The serial/OpenMP code is scalar, so a vector-typed IR op (which
        never occurs in the naive kernels anyway) costs width × scalar.
        """
        per_lane = self.op_cycles[op]
        if base == "f64":
            per_lane *= self.fp64_cost_factor
        if base.startswith("f"):
            per_lane /= self.fp_ops_per_cycle
        else:
            per_lane /= self.int_ops_per_cycle
        return per_lane * width
