"""Calibrated description of the Samsung Exynos 5250 Arndale board.

Every hardware constant of the reproduction lives here, with its
provenance.  *Only* hardware-level quantities are calibrated — clocks,
widths, capacities, bandwidths, overheads and rail powers.  The
per-benchmark results of Figures 2–4 are emergent from these constants
plus each benchmark's honest instruction mix; no per-benchmark result is
pinned.

Provenance notes:

* CPU: dual Cortex-A15 @ 1.7 GHz, 32 KB L1 I/D, 1 MB shared L2
  (paper §IV-C; Samsung Exynos 5250 datasheet).
* GPU: quad-core Mali-T604 @ 533 MHz, 2 arithmetic pipes/core, 128-bit
  registers, 256 KB L2 (paper §II-A; ARM Mali-T604 documentation).
* DRAM: 2 GB DDR3L-1600 on a 2×32-bit interface → 12.8 GB/s peak
  (paper §IV-C; Arndale board manual).  Per-agent sustainable caps
  follow the Mont-Blanc prototype STREAM measurements on this SoC
  (~⅓ of peak for one A15, ~60 % for the GPU).
* Power rails: chosen so the board-level ratios the paper measures hold
  (Serial ≈ 3.5 W boards were typical for Arndale; OpenMP ≈ +31 %,
  GPU runs within ±20 % of Serial depending on pipe utilization).
* Meter: Yokogawa WT230, 10 Hz, 0.1 % (paper §IV-D).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cpu.config import A15Config
from ..mali.config import MaliConfig
from ..memory.cache import CacheConfig, CacheHierarchy
from ..memory.dram import DramConfig, DramModel
from ..power.meter import YokogawaWT230
from ..power.model import BoardPowerModel
from ..power.rails import PowerRailConfig


@dataclass(frozen=True)
class ExynosPlatform:
    """The full simulated platform: SoC + board + meter settings."""

    mali: MaliConfig = field(default_factory=MaliConfig)
    cpu: A15Config = field(default_factory=A15Config)
    dram: DramConfig = field(default_factory=DramConfig)
    rails: PowerRailConfig = field(default_factory=PowerRailConfig)
    # CPU hierarchy: 32 KB L1D per core, 1 MB shared L2
    cpu_l1: CacheConfig = field(default_factory=lambda: CacheConfig(size_bytes=32 * 1024))
    cpu_l2: CacheConfig = field(default_factory=lambda: CacheConfig(size_bytes=1024 * 1024))
    # GPU hierarchy: small per-core caches, 256 KB shared L2
    gpu_l1: CacheConfig = field(default_factory=lambda: CacheConfig(size_bytes=16 * 1024))
    gpu_l2: CacheConfig = field(default_factory=lambda: CacheConfig(size_bytes=256 * 1024))
    meter_sample_hz: float = 10.0
    meter_accuracy: float = 0.001
    #: driver quirk table; None = the 2013 driver's default defects
    #: (see repro.ocl.driver.default_quirks) — an empty tuple models the
    #: "future version of the compiler" the paper was promised
    driver_quirks: tuple | None = None

    # ------------------------------------------------------------------
    # model factories (models are lightweight; construct per use)
    # ------------------------------------------------------------------
    def dram_model(self) -> DramModel:
        return DramModel(self.dram)

    def cpu_caches(self) -> CacheHierarchy:
        return CacheHierarchy(self.cpu_l1, self.cpu_l2)

    def gpu_caches(self) -> CacheHierarchy:
        return CacheHierarchy(self.gpu_l1, self.gpu_l2)

    def power_model(self) -> BoardPowerModel:
        return BoardPowerModel(self.rails)

    def meter(self, seed: int | None = 0) -> YokogawaWT230:
        return YokogawaWT230(self.meter_sample_hz, self.meter_accuracy, seed=seed)

    def pricing_model(self):
        """Every batched pricing model of this platform, as one facade.

        The single seam through which callers get model objects: GPU
        launch timing, CPU timing, DRAM transfers and board power as
        one :class:`~repro.pricing.grid.PlatformPricing` — nobody has to
        assemble DRAM/cache/power models by hand, and a future SoC
        design-space explorer can inject variant platforms here.
        """
        from ..pricing.grid import PlatformPricing  # deferred: pricing imports models

        return PlatformPricing(self)


_DEFAULT: ExynosPlatform | None = None


def default_platform() -> ExynosPlatform:
    """The calibrated Exynos 5250 platform singleton."""
    global _DEFAULT
    if _DEFAULT is None:
        from .validation import validate_platform

        platform = ExynosPlatform()
        validate_platform(platform)
        _DEFAULT = platform
    return _DEFAULT
