"""Calibrated hardware constants for the simulated Exynos 5250 platform.

The sensitivity-analysis tooling lives in
:mod:`repro.calibration.sensitivity`; it is not re-exported here because
it depends on the benchmark suite (importing it eagerly would create a
package cycle).
"""

from .exynos5250 import ExynosPlatform, default_platform
from .socspace import EXYNOS_5250, SoCConfig, config_grid, default_space, load_configs
from .validation import validate_platform

__all__ = [
    "EXYNOS_5250",
    "ExynosPlatform",
    "SoCConfig",
    "config_grid",
    "default_platform",
    "default_space",
    "load_configs",
    "validate_platform",
]
