"""Declarative SoC design space around the Exynos 5250 calibration.

The paper evaluates one fixed SoC.  This module lifts the hard-wired
calibration into a parameterized family: each :class:`SoCConfig` names a
hypothetical Mali + A15 SoC by its headline knobs — GPU core count and
clock, A15 core count and clock, DRAM bandwidth, register-file size,
rail-power scaling — and derives a full
:class:`~repro.calibration.exynos5250.ExynosPlatform` from the measured
Exynos 5250 baseline via ``dataclasses.replace``.

Two invariants matter for the design-space driver:

* **The baseline reproduces exactly.**  Every knob defaults to the
  Exynos 5250 value and every derivation multiplies by a factor that is
  exactly ``1.0`` at the default, so ``EXYNOS_5250.platform()``
  compares equal to :func:`~repro.calibration.exynos5250.default_platform`
  field for field — the measured SoC is a *point* of the space, not an
  approximation of one.  (Clocks are stored in Hz for this reason:
  ``1.7 * 1e9 != 1.7e9`` in float64.)
* **Configs are content-addressed.**  :meth:`SoCConfig.digest` hashes
  the *derived* hardware description (not the name), so two configs that
  mean the same hardware share a digest and two that differ anywhere in
  the derived configs never collide — the token the perf-memo layer
  already picks up through its config-valued content keys.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, fields, replace

from ..errors import CalibrationError
from .exynos5250 import ExynosPlatform, default_platform

#: validated (lo, hi) ranges per knob — wide enough for any plausible
#: embedded SoC, tight enough to catch unit mistakes (MHz vs Hz, GB/s
#: vs bytes/s)
_RANGES = {
    "gpu_cores": (1, 32),
    "gpu_clock_hz": (100e6, 2e9),
    "cpu_cores": (1, 16),
    "cpu_clock_hz": (200e6, 4e9),
    "dram_gbps": (1.0, 100.0),
    "register_file_scale": (0.125, 4.0),
    "rail_scale": (0.1, 10.0),
}


@dataclass(frozen=True)
class SoCConfig:
    """One point of the SoC design space (Exynos 5250 defaults)."""

    name: str
    #: Mali shader cores and clock
    gpu_cores: int = 4
    gpu_clock_hz: float = 533e6
    #: Cortex-A15 cores and clock
    cpu_cores: int = 2
    cpu_clock_hz: float = 1.7e9
    #: DRAM peak bandwidth, GB/s (per-agent caps scale proportionally)
    dram_gbps: float = 12.8
    #: GPU register-file capacity relative to the T604
    register_file_scale: float = 1.0
    #: scaling of the *dynamic* rail coefficients (CPU core, GPU pipes,
    #: host polling); the board floor and DRAM energy/byte stay fixed
    rail_scale: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise CalibrationError("SoCConfig needs a non-empty name")
        for knob, (lo, hi) in _RANGES.items():
            value = getattr(self, knob)
            if not lo <= value <= hi:
                raise CalibrationError(
                    f"SoCConfig.{knob}={value!r} outside the validated range [{lo}, {hi}]"
                )

    # ------------------------------------------------------------------
    def platform(self, base: ExynosPlatform | None = None) -> ExynosPlatform:
        """The derived platform (``base`` defaults to the Exynos 5250)."""
        if base is None:
            base = default_platform()
        mali = replace(
            base.mali,
            shader_cores=self.gpu_cores,
            clock_hz=self.gpu_clock_hz,
            register_file_scale=self.register_file_scale,
        )
        cpu = replace(base.cpu, cores=self.cpu_cores, clock_hz=self.cpu_clock_hz)
        factor = (self.dram_gbps * 1e9) / base.dram.peak_bandwidth
        dram = replace(
            base.dram,
            peak_bandwidth=base.dram.peak_bandwidth * factor,
            cpu_single_core_cap=base.dram.cpu_single_core_cap * factor,
            cpu_dual_core_cap=base.dram.cpu_dual_core_cap * factor,
            gpu_cap=base.dram.gpu_cap * factor,
        )
        rails = replace(
            base.rails,
            cpu_core_base_w=base.rails.cpu_core_base_w * self.rail_scale,
            cpu_core_ipc_w=base.rails.cpu_core_ipc_w * self.rail_scale,
            gpu_base_w=base.rails.gpu_base_w * self.rail_scale,
            gpu_alu_w=base.rails.gpu_alu_w * self.rail_scale,
            gpu_ls_w=base.rails.gpu_ls_w * self.rail_scale,
            host_polling_w=base.rails.host_polling_w * self.rail_scale,
        )
        return replace(base, mali=mali, cpu=cpu, dram=dram, rails=rails)

    def digest(self, base: ExynosPlatform | None = None) -> str:
        """Content digest of the *derived* hardware (name excluded)."""
        platform = self.platform(base)
        payload = repr(
            (platform.mali, platform.cpu, platform.dram, platform.rails)
        ).encode()
        return hashlib.sha256(payload).hexdigest()[:16]

    def describe(self) -> str:
        return (
            f"{self.name}: {self.gpu_cores}-core Mali @ {self.gpu_clock_hz / 1e6:g} MHz, "
            f"{self.cpu_cores}x A15 @ {self.cpu_clock_hz / 1e9:g} GHz, "
            f"{self.dram_gbps:g} GB/s DRAM, regfile x{self.register_file_scale:g}, "
            f"rails x{self.rail_scale:g}"
        )


#: the measured board, as a point of the space
EXYNOS_5250 = SoCConfig(name="exynos5250")


def _axis_token(knob: str, value) -> str:
    if knob == "gpu_cores":
        return f"g{value}"
    if knob == "gpu_clock_hz":
        return f"{value / 1e6:g}MHz"
    if knob == "cpu_cores":
        return f"c{value}"
    if knob == "cpu_clock_hz":
        return f"{value / 1e9:g}GHz"
    if knob == "dram_gbps":
        return f"{value:g}GBs"
    if knob == "register_file_scale":
        return f"rf{value:g}"
    return f"rs{value:g}"


def config_grid(name_prefix: str = "soc", **axes) -> tuple[SoCConfig, ...]:
    """Cross-product of knob value tuples, deterministically named.

    Axes are any :class:`SoCConfig` knob; omitted knobs stay at the
    Exynos 5250 default.  Names concatenate the prefix with a token per
    *swept* axis (one with more than one value), in knob-declaration
    order, so a grid's names are stable across runs.  A point matching
    :data:`EXYNOS_5250` on every knob is renamed ``"exynos5250"``.
    """
    order = [f.name for f in fields(SoCConfig) if f.name != "name"]
    unknown = set(axes) - set(order)
    if unknown:
        raise CalibrationError(f"unknown SoCConfig axes: {sorted(unknown)}")
    swept = [k for k in order if k in axes]
    values = [tuple(axes[k]) for k in swept]
    for knob, vals in zip(swept, values):
        if not vals:
            raise CalibrationError(f"axis {knob!r} has no values")
    named_axes = [k for k, vals in zip(swept, values) if len(vals) > 1]
    configs = []
    for combo in itertools.product(*values):
        knobs = dict(zip(swept, combo))
        tokens = [_axis_token(k, knobs[k]) for k in named_axes]
        name = "-".join([name_prefix] + tokens) if tokens else name_prefix
        cfg = SoCConfig(name=name, **knobs)
        if replace(cfg, name=EXYNOS_5250.name) == EXYNOS_5250:
            cfg = replace(cfg, name=EXYNOS_5250.name)
        configs.append(cfg)
    return tuple(configs)


def default_space() -> tuple[SoCConfig, ...]:
    """The default 64-config sweep: cores x GPU clock x DRAM bandwidth.

    Clock and bandwidth points follow real Mali-T6xx-era SoCs (T604 at
    416/533 MHz bins, T628 parts up to 600/700 MHz; LPDDR3 interfaces
    from 8.5 to 16.5 GB/s).  The Exynos 5250 appears as the
    ``"exynos5250"`` point.
    """
    return config_grid(
        gpu_cores=(2, 4, 6, 8),
        gpu_clock_hz=(416e6, 533e6, 600e6, 700e6),
        dram_gbps=(8.5, 12.8, 14.9, 16.5),
    )


def load_configs(path) -> tuple[SoCConfig, ...]:
    """Read a design-space config file (JSON).

    Two shapes are accepted::

        {"configs": [{"name": "big", "gpu_cores": 8, ...}, ...]}
        {"grid": {"name_prefix": "soc", "gpu_cores": [4, 8], ...}}

    A file may carry both; explicit configs precede grid points.
    """
    with open(path, encoding="utf-8") as fh:
        data = json.load(fh)
    if not isinstance(data, dict) or not ({"configs", "grid"} & set(data)):
        raise CalibrationError(
            f"{path}: expected a JSON object with 'configs' and/or 'grid'"
        )
    out: list[SoCConfig] = []
    for entry in data.get("configs", ()):
        if not isinstance(entry, dict) or "name" not in entry:
            raise CalibrationError(f"{path}: each config needs at least a 'name'")
        try:
            out.append(SoCConfig(**entry))
        except TypeError as exc:
            raise CalibrationError(f"{path}: bad config {entry.get('name')!r}: {exc}") from None
    grid = data.get("grid")
    if grid is not None:
        if not isinstance(grid, dict):
            raise CalibrationError(f"{path}: 'grid' must be an object of axis lists")
        kwargs = dict(grid)
        prefix = kwargs.pop("name_prefix", "soc")
        out.extend(config_grid(name_prefix=prefix, **kwargs))
    names = [c.name for c in out]
    if len(set(names)) != len(names):
        dupes = sorted({n for n in names if names.count(n) > 1})
        raise CalibrationError(f"{path}: duplicate config names {dupes}")
    return tuple(out)
