"""Sensitivity analysis of the calibration constants.

Every hardware constant in :mod:`repro.calibration.exynos5250` was set
once from public specs; this module answers "how much does conclusion X
depend on constant Y?" by perturbing one constant at a time and
re-running a compact probe (a few benchmark Opt-vs-Serial speedups).
A reproduction whose headline flips when a constant moves ±20 % would
be calibration-fitting, not modelling — the tests pin that it doesn't.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable

from ..benchmarks.base import Precision, Version, run_version
from ..benchmarks.registry import create
from .exynos5250 import ExynosPlatform, default_platform

#: compact probe set spanning the result regimes: memory-bound,
#: atomic-bound, compute-bound
PROBE_BENCHMARKS = ("vecop", "hist", "dmmm")


@dataclass(frozen=True)
class Perturbation:
    """One named way of scaling a platform constant."""

    name: str
    apply: Callable[[ExynosPlatform, float], ExynosPlatform]


def _scale_mali(field: str):
    def apply(p: ExynosPlatform, f: float) -> ExynosPlatform:
        return dataclasses.replace(
            p, mali=dataclasses.replace(p.mali, **{field: getattr(p.mali, field) * f})
        )

    return apply


def _scale_cpu(field: str):
    def apply(p: ExynosPlatform, f: float) -> ExynosPlatform:
        return dataclasses.replace(
            p, cpu=dataclasses.replace(p.cpu, **{field: getattr(p.cpu, field) * f})
        )

    return apply


def _scale_dram_caps(p: ExynosPlatform, f: float) -> ExynosPlatform:
    d = p.dram
    return dataclasses.replace(
        p,
        dram=dataclasses.replace(
            d,
            cpu_single_core_cap=min(d.cpu_single_core_cap * f, d.peak_bandwidth),
            cpu_dual_core_cap=min(d.cpu_dual_core_cap * f, d.peak_bandwidth),
            gpu_cap=min(d.gpu_cap * f, d.peak_bandwidth),
        ),
    )


PERTURBATIONS: tuple[Perturbation, ...] = (
    Perturbation("mali.clock_hz", _scale_mali("clock_hz")),
    Perturbation("mali.wg_schedule_cycles", _scale_mali("wg_schedule_cycles")),
    Perturbation("mali.scalar_access_dram_efficiency", _scale_mali("scalar_access_dram_efficiency")),
    Perturbation("mali.atomic_cycles", _scale_mali("atomic_cycles")),
    Perturbation("cpu.clock_hz", _scale_cpu("clock_hz")),
    Perturbation("cpu.fp_mac_latency", _scale_cpu("fp_mac_latency")),
    Perturbation("dram.agent_caps", _scale_dram_caps),
)


@dataclass(frozen=True)
class SensitivityRow:
    """Probe speedups under one perturbation factor."""

    constant: str
    factor: float
    speedups: dict[str, float]

    def max_relative_change(self, baseline: "SensitivityRow") -> float:
        changes = [
            abs(self.speedups[b] - baseline.speedups[b]) / baseline.speedups[b]
            for b in self.speedups
        ]
        return max(changes)


def probe_speedups(
    platform: ExynosPlatform,
    benchmarks: tuple[str, ...] = PROBE_BENCHMARKS,
    scale: float = 0.25,
    seed: int = 1234,
    model_only: bool = False,
) -> dict[str, float]:
    """Opt-over-Serial speedups of the probe set on a platform.

    ``model_only=True`` prices each probe through the platform's
    ``pricing_model()`` instead of running functional code + meter —
    the per-point cost a wide perturbation sweep actually needs.
    """
    out = {}
    for name in benchmarks:
        if model_only:
            from ..designspace import opt_over_serial

            sp = opt_over_serial(
                name,
                {"probe": platform},
                precision=Precision.SINGLE,
                scale=scale,
                seed=seed,
                serial="each",
            )["probe"]
            if sp is None:
                raise RuntimeError(f"no feasible Opt candidate for probe {name!r}")
            out[name] = sp
        else:
            bench = create(name, precision=Precision.SINGLE, scale=scale, seed=seed,
                           platform=platform)
            serial = run_version(bench, version=Version.SERIAL)
            opt = run_version(bench, version=Version.OPENCL_OPT)
            out[name] = serial.elapsed_s / opt.elapsed_s
    return out


def analyze_sensitivity(
    factors: tuple[float, ...] = (0.8, 1.25),
    perturbations: tuple[Perturbation, ...] = PERTURBATIONS,
    benchmarks: tuple[str, ...] = PROBE_BENCHMARKS,
    scale: float = 0.25,
) -> tuple[SensitivityRow, list[SensitivityRow]]:
    """(baseline, perturbed rows) for the probe benchmarks."""
    base_platform = default_platform()
    baseline = SensitivityRow(
        constant="baseline",
        factor=1.0,
        speedups=probe_speedups(base_platform, benchmarks, scale),
    )
    rows = []
    for pert in perturbations:
        for factor in factors:
            platform = pert.apply(base_platform, factor)
            rows.append(
                SensitivityRow(
                    constant=pert.name,
                    factor=factor,
                    speedups=probe_speedups(platform, benchmarks, scale),
                )
            )
    return baseline, rows


def format_sensitivity(baseline: SensitivityRow, rows: list[SensitivityRow]) -> str:
    benchmarks = list(baseline.speedups)
    lines = [
        "calibration sensitivity (Opt speedup over Serial)",
        "  " + f"{'constant':38s} {'x':>5s} " + " ".join(f"{b:>8s}" for b in benchmarks)
        + f" {'max Δ':>7s}",
        "  " + f"{'baseline':38s} {'1.00':>5s} "
        + " ".join(f"{baseline.speedups[b]:8.2f}" for b in benchmarks),
    ]
    for row in rows:
        delta = row.max_relative_change(baseline)
        lines.append(
            f"  {row.constant:38s} {row.factor:5.2f} "
            + " ".join(f"{row.speedups[b]:8.2f}" for b in benchmarks)
            + f" {delta:6.1%}"
        )
    return "\n".join(lines)
