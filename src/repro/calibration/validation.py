"""Physical sanity checks on a calibrated platform.

These invariants catch calibration mistakes that would silently corrupt
every experiment: an agent bandwidth above the DRAM peak, a GPU slower
than a single CPU core at peak, rail powers that invert the paper's
qualitative power ordering, and so on.
"""

from __future__ import annotations

from ..errors import CalibrationError
from ..power.rails import Activity, ActivityKind
from .exynos5250 import ExynosPlatform


def validate_platform(platform: ExynosPlatform) -> None:
    """Raise :class:`CalibrationError` on physically implausible configs."""
    _check_bandwidths(platform)
    _check_compute(platform)
    _check_power_ordering(platform)
    _check_caches(platform)


def _check_bandwidths(p: ExynosPlatform) -> None:
    d = p.dram
    if not (d.cpu_single_core_cap <= d.cpu_dual_core_cap <= d.peak_bandwidth):
        raise CalibrationError("CPU DRAM caps must be ordered: single <= dual <= peak")
    if d.gpu_cap > d.peak_bandwidth:
        raise CalibrationError("GPU DRAM cap exceeds peak bandwidth")
    if d.gpu_cap < d.cpu_single_core_cap:
        raise CalibrationError(
            "GPU should sustain at least a single core's bandwidth "
            "(it has far more outstanding requests)"
        )


def _check_compute(p: ExynosPlatform) -> None:
    cpu_fp32 = p.cpu.clock_hz * p.cpu.fp_ops_per_cycle * 2  # FMA = 2 flops
    if p.mali.peak_fp32_flops <= cpu_fp32:
        raise CalibrationError(
            f"Mali peak fp32 ({p.mali.peak_fp32_flops/1e9:.1f} GF) must exceed one "
            f"A15 core ({cpu_fp32/1e9:.1f} GF) — otherwise no speedup is possible"
        )
    if p.mali.peak_fp64_flops >= p.mali.peak_fp32_flops:
        raise CalibrationError("fp64 peak must be below fp32 peak")


def _check_power_ordering(p: ExynosPlatform) -> None:
    rails = p.rails
    idle = rails.power(Activity(ActivityKind.IDLE, 1.0))
    serial = rails.power(Activity(ActivityKind.CPU, 1.0, active_cpu_cores=1, cpu_ipc=1.2))
    omp = rails.power(Activity(ActivityKind.CPU, 1.0, active_cpu_cores=2, cpu_ipc=1.2))
    gpu_mem = rails.power(
        Activity(ActivityKind.GPU_KERNEL, 1.0, gpu_alu_utilization=0.1, gpu_ls_utilization=0.5)
    )
    gpu_cmp = rails.power(
        Activity(ActivityKind.GPU_KERNEL, 1.0, gpu_alu_utilization=0.95, gpu_ls_utilization=0.6)
    )
    if not idle < serial < omp:
        raise CalibrationError("power ordering violated: idle < serial < OpenMP expected")
    if not gpu_mem < serial:
        raise CalibrationError(
            "a memory-bound GPU run should draw less board power than Serial "
            "(paper Fig. 3: spmv/vecop/hist below 1.0)"
        )
    if not gpu_cmp > serial:
        raise CalibrationError(
            "a compute-bound GPU run should draw more board power than Serial "
            "(paper Fig. 3: amcd/dmmm up to +22 %)"
        )
    if gpu_cmp > omp * 1.3:
        raise CalibrationError("GPU power implausibly above the dual-core CPU envelope")


def _check_caches(p: ExynosPlatform) -> None:
    if p.cpu_l1.size_bytes >= p.cpu_l2.size_bytes:
        raise CalibrationError("CPU L1 must be smaller than L2")
    if p.gpu_l1.size_bytes >= p.gpu_l2.size_bytes:
        raise CalibrationError("GPU L1 must be smaller than L2")
    if p.gpu_l2.size_bytes > p.cpu_l2.size_bytes:
        raise CalibrationError("Mali-T604 L2 (256 KB) should not exceed the CPU L2 (1 MB)")
