"""Workload traits shared by every device model.

The kernel IR describes *what one work-item does*; :class:`WorkloadTraits`
describes the *dataset-level* properties a cycle-accurate simulator would
discover from addresses but an analytical model must be told: per-buffer
footprints and reuse (for the cache model), load imbalance (spmv's ragged
rows), and the serial fractions of the CPU implementations (hist's
reduction stage, red's final pass).

Benchmarks construct these from their actual problem instances — e.g.
spmv computes the row-length coefficient of variation from the matrix it
actually built — so the traits are measured properties of real data, not
free parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .memory.cache import StreamSpec


@dataclass(frozen=True)
class WorkloadTraits:
    """Dataset-level properties of one benchmark version's kernel run.

    Attributes:
        streams: per-buffer traffic description for the cache hierarchy.
        imbalance_cv: coefficient of variation of per-work-item (or
            per-chunk) work; 0 means perfectly uniform.  Drives the GPU
            job-manager imbalance term and the OpenMP imbalance term.
        serial_fraction: fraction of total work that cannot be
            parallelized on the CPU (Amdahl term for the OpenMP model).
        launches: kernel launches (GPU) or parallel regions (OpenMP) per
            timed iteration — fork/join and driver overhead multiplier.
        elements: logical problem elements processed per timed iteration
            (the NDRange before vectorization divides it).
    """

    streams: tuple[StreamSpec, ...] = ()
    imbalance_cv: float = 0.0
    serial_fraction: float = 0.0
    launches: int = 1
    elements: int = 0

    def __post_init__(self) -> None:
        if self.imbalance_cv < 0:
            raise ValueError("imbalance_cv must be >= 0")
        if not 0.0 <= self.serial_fraction <= 1.0:
            raise ValueError("serial_fraction must be in [0, 1]")
        if self.launches < 1:
            raise ValueError("launches must be >= 1")
        if self.elements < 0:
            raise ValueError("elements must be >= 0")

    @property
    def total_footprint_bytes(self) -> float:
        return sum(s.footprint_bytes for s in self.streams)
