"""The kernel compilation pipeline.

``compile_kernel`` is the model's stand-in for ``clBuildProgram`` +
``clCreateKernel`` on the Mali driver stack: it validates the IR, runs
the source-level optimization passes in the order a programmer applies
them (layout and qualifiers are source rewrites, then the compiler
vectorizes and unrolls), consults the driver *quirk table* (the ARM
compiler defect that breaks double-precision ``amcd``), and finally
allocates registers — which may insert spill code or fail with
``CL_OUT_OF_RESOURCES`` semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Callable, Protocol, Sequence

from .. import perf
from ..ir.analysis import InstructionMix, analyze
from ..ir.nodes import Kernel
from ..ir.validate import validate
from .layout import SoaLayoutPass
from .options import CompileOptions
from .passes import KernelPass, PassContext, run_pipeline
from .qualifiers import QualifiersPass
from .regalloc import RegisterReport, allocate
from .unroll import UnrollPass
from .vectorize import VectorizePass


class DriverQuirk(Protocol):
    """A defect or behaviour of the (closed-source) driver stack.

    ``check`` raises an appropriate :class:`repro.errors.CompilerError`
    when the quirk triggers for this kernel/options combination.
    """

    def check(self, kernel: Kernel, options: CompileOptions) -> None: ...


@dataclass(frozen=True)
class CompiledKernel:
    """Result of a successful compilation."""

    kernel: Kernel
    source_kernel: Kernel
    options: CompileOptions
    registers: RegisterReport
    log: tuple[str, ...]
    warnings: tuple[str, ...]
    mix: InstructionMix = field(repr=False, compare=False, default=None)  # type: ignore[assignment]

    @property
    def name(self) -> str:
        return self.kernel.name

    @property
    def elems_per_item(self) -> int:
        return self.kernel.elems_per_item

    def __getstate__(self):
        # the pricing layer attaches derived caches (memo-key token, mix
        # columns) to the instance dict; they are per-process (hash
        # randomization, config identity) and rebuildable, so only the
        # declared fields travel across pickles
        return {f.name: getattr(self, f.name) for f in fields(self)}


def default_passes() -> list[KernelPass]:
    """Pass order: source rewrites first, then codegen transforms."""
    return [SoaLayoutPass(), QualifiersPass(), VectorizePass(), UnrollPass()]


def compile_kernel(
    kernel: Kernel,
    options: CompileOptions | None = None,
    quirks: Sequence[DriverQuirk] = (),
    passes: list[KernelPass] | None = None,
) -> CompiledKernel:
    """Compile a kernel IR under the given optimization options.

    Raises:
        repro.errors.IRError: structurally invalid input IR.
        repro.errors.CompilerInternalError: a driver quirk fired.
        repro.errors.RegisterAllocationError: register file exhausted
            (the runtime reports this as ``CL_OUT_OF_RESOURCES``).
    """
    options = options or CompileOptions()
    if passes is not None:
        # A custom pass list is not content-hashable; always compile fresh.
        return _compile_uncached(kernel, options, quirks, passes)
    key = (kernel, options, tuple(quirks))
    return perf.cache("compile").get_or_compute(
        key, lambda: _compile_uncached(kernel, options, quirks, None)
    )


def _compile_uncached(
    kernel: Kernel,
    options: CompileOptions,
    quirks: Sequence[DriverQuirk],
    passes: list[KernelPass] | None,
) -> CompiledKernel:
    validate(kernel)

    for quirk in quirks:
        quirk.check(kernel, options)

    ctx = PassContext()
    transformed = run_pipeline(kernel, options, passes or default_passes(), ctx)
    transformed, report = allocate(transformed, options, ctx)
    validate(transformed)

    return CompiledKernel(
        kernel=transformed,
        source_kernel=kernel,
        options=options,
        registers=report,
        log=tuple(ctx.log),
        warnings=tuple(ctx.warnings),
        mix=analyze(transformed),
    )
