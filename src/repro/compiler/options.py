"""Compilation options: which of the paper's optimizations to apply.

One :class:`CompileOptions` value describes a point in the optimization
space of Section III.  The paper's two kernel configurations map to:

* **OpenCL** (naive port): ``CompileOptions()`` — everything off.
* **OpenCL Opt**: the per-benchmark best configuration found by the
  autotuner (:mod:`repro.optimizations.autotune`), i.e. vectorization at
  a tuned width, unrolling, SOA layout where the kernel has records, and
  the ``inline``/``const``/``restrict`` qualifiers.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..ir.dtypes import normalize_width


@dataclass(frozen=True)
class CompileOptions:
    """Kernel-level optimization switches (Section III-B of the paper).

    Attributes:
        vector_width: OpenCL vector width to compile to (1 = scalar code;
            4/8/16 are the widths the paper suggests experimenting with).
        unroll: loop unroll factor (1 = no unrolling).
        soa: apply the AOS→SOA data-layout transformation.
        qualifiers: add ``inline`` / ``const`` / ``restrict``.
        vector_loads: use ``vloadN``/``vstoreN`` even where compute stays
            scalar (the paper's "Vector Sizes" note: vector memory ops pay
            off on their own).  Implied by ``vector_width > 1``.
        native_math: use the OpenCL ``native_*`` builtins (native_exp,
            native_rsqrt, ...) — fast reduced-precision hardware paths.
            **Extension beyond the paper's catalogue**: the Mali
            Developer Guide recommends it, but the paper's Full-Profile
            HPC framing keeps IEEE math, so the reproduction's Opt
            versions never enable it; it exists for the ablation study.
    """

    vector_width: int = 1
    unroll: int = 1
    soa: bool = False
    qualifiers: bool = False
    vector_loads: bool = False
    native_math: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "vector_width", normalize_width(self.vector_width))
        if self.unroll < 1:
            raise ValueError(f"unroll must be >= 1, got {self.unroll}")

    @property
    def any_enabled(self) -> bool:
        return (
            self.vector_width > 1
            or self.unroll > 1
            or self.soa
            or self.qualifiers
            or self.vector_loads
            or self.native_math
        )

    def with_(self, **kwargs) -> "CompileOptions":
        return replace(self, **kwargs)

    def describe(self) -> str:
        parts = []
        if self.vector_width > 1:
            parts.append(f"vec{self.vector_width}")
        if self.unroll > 1:
            parts.append(f"unroll{self.unroll}")
        if self.soa:
            parts.append("soa")
        if self.qualifiers:
            parts.append("qual")
        if self.vector_loads and self.vector_width == 1:
            parts.append("vload")
        if self.native_math:
            parts.append("native")
        return "+".join(parts) if parts else "naive"


#: the naive-port configuration (paper's "OpenCL" bars)
NAIVE = CompileOptions()
