"""Loop-unrolling pass.

Unrolling by ``u`` executes the loop header (increment, compare, branch)
once per ``u`` bodies instead of once per body.  When the trip count is
not a multiple of ``u`` the compiler must emit a remainder epilogue —
the cost the paper flags: "in case the number of iterations is not a
perfect multiple of the vector size, the overhead due to the correct
handling of the last iterations of the loop has to be considered".

The register-pressure side effect (unrolled bodies keep more values
live) is priced by :mod:`repro.compiler.regalloc`, which reads the
largest unroll factor in the tree.
"""

from __future__ import annotations

import dataclasses
import math

from ..ir.nodes import Block, Branch, Call, Kernel, Loop, Stmt
from .options import CompileOptions
from .passes import KernelPass, PassContext


def _unroll_block(block: Block, u: int, ctx: PassContext) -> Block:
    out: list[Stmt] = []
    for stmt in block:
        if isinstance(stmt, Loop):
            body = _unroll_block(stmt.body, u, ctx)
            if stmt.static_trip and stmt.unroll == 1 and stmt.trip >= u:
                main_trip = math.floor(stmt.trip / u) * u
                remainder = stmt.trip - main_trip
                out.append(
                    dataclasses.replace(stmt, trip=float(main_trip), body=body, unroll=u)
                )
                if remainder > 1e-12:
                    ctx.info(f"unroll: remainder epilogue of {remainder:g} iterations")
                    out.append(
                        dataclasses.replace(
                            stmt, trip=float(remainder), body=body, unroll=1, vectorizable=False
                        )
                    )
            else:
                out.append(dataclasses.replace(stmt, body=body))
        elif isinstance(stmt, Branch):
            new_orelse = _unroll_block(stmt.orelse, u, ctx) if stmt.orelse is not None else None
            out.append(
                dataclasses.replace(
                    stmt, body=_unroll_block(stmt.body, u, ctx), orelse=new_orelse
                )
            )
        elif isinstance(stmt, Call):
            out.append(dataclasses.replace(stmt, body=_unroll_block(stmt.body, u, ctx)))
        else:
            out.append(stmt)
    return Block(tuple(out))


class UnrollPass(KernelPass):
    """Unroll vectorizable loops by ``options.unroll``."""

    name = "unroll"

    def applies(self, options: CompileOptions) -> bool:
        return options.unroll > 1

    def run(self, kernel: Kernel, options: CompileOptions, ctx: PassContext) -> Kernel:
        body = _unroll_block(kernel.body, options.unroll, ctx)
        return kernel.with_body(body)
