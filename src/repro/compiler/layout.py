"""AOS→SOA data-layout transformation.

In an Array-of-Structures buffer, consecutive work-items reading field
``x`` of consecutive records touch memory with a stride of the record
size — a ``STRIDED`` pattern that cannot be vector-loaded and wastes
DRAM bursts.  The Structure-of-Arrays layout stores each field
contiguously, turning those accesses into ``UNIT`` streams (the paper's
"Data Organization" point: SOA "would facilitate the application of
vector instructions increasing the code performance").

The pass rewrites every access to an AOS buffer with more than one
record field from ``STRIDED`` to ``UNIT`` and marks the parameter SOA.
It must run *before* vectorization: the vectorizer refuses to widen
strided accesses, so the layout change is what unlocks vector loads.
"""

from __future__ import annotations

import dataclasses

from ..ir.nodes import Block, Branch, Call, Kernel, Layout, Loop, MemAccess, AccessPattern, Stmt
from .options import CompileOptions
from .passes import KernelPass, PassContext


def _rewrite(block: Block, targets: frozenset[str]) -> Block:
    out: list[Stmt] = []
    for stmt in block:
        if isinstance(stmt, MemAccess) and stmt.param in targets and stmt.pattern == AccessPattern.STRIDED:
            out.append(dataclasses.replace(stmt, pattern=AccessPattern.UNIT))
        elif isinstance(stmt, Branch):
            new_orelse = _rewrite(stmt.orelse, targets) if stmt.orelse is not None else None
            out.append(dataclasses.replace(stmt, body=_rewrite(stmt.body, targets), orelse=new_orelse))
        elif isinstance(stmt, (Loop, Call)):
            out.append(dataclasses.replace(stmt, body=_rewrite(stmt.body, targets)))
        else:
            out.append(stmt)
    return Block(tuple(out))


class SoaLayoutPass(KernelPass):
    """Convert AOS record buffers to SOA and fix up access patterns."""

    name = "soa-layout"

    def applies(self, options: CompileOptions) -> bool:
        return options.soa

    def run(self, kernel: Kernel, options: CompileOptions, ctx: PassContext) -> Kernel:
        targets = frozenset(
            p.name
            for p in kernel.buffer_params()
            if p.layout == Layout.AOS and p.record_fields > 1
        )
        if not targets:
            ctx.info("soa-layout: no AOS record buffers; nothing to do")
            return kernel
        new_params = tuple(
            dataclasses.replace(p, layout=Layout.SOA)
            if getattr(p, "name", None) in targets
            else p
            for p in kernel.params
        )
        body = _rewrite(kernel.body, targets)
        ctx.info(f"soa-layout: converted {sorted(targets)} to SOA (strided -> unit streams)")
        return dataclasses.replace(kernel, params=new_params, body=body)
