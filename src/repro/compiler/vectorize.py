"""Vectorization pass.

Implements the paper's "Vectorization", "Vector Sizes" and the
vector-load-only variant of Section III-B:

* **Streaming kernels** (no per-item loop over elements, e.g. ``vecop``):
  each work-item is widened to process ``w`` elements — vectorizable
  unit-stride operations become width-``w`` vector ops, everything that
  cannot vectorize executes ``w`` times, and ``elems_per_item`` is
  multiplied so the launcher shrinks the NDRange (this is the paper's
  "reducing the global work size ... reduction of the run-time
  scheduling overheads").
* **Loop kernels** (per-item element loop, e.g. ``dmmm``'s dot-product
  loop): the innermost vectorizable loop is strip-mined by ``w`` with a
  scalar remainder epilogue when the trip count does not divide evenly —
  the overhead the paper warns about under "Loop Unrolling".

Only ``UNIT`` and ``BROADCAST`` access patterns may be widened into
vector loads/stores: strided and gathered elements are not contiguous,
which is exactly why the AOS→SOA transformation
(:mod:`repro.compiler.layout`) is a prerequisite for vectorizing
record-structured kernels.
"""

from __future__ import annotations

import dataclasses
import math

from ..ir.nodes import (
    AccessPattern,
    Arith,
    Atomic,
    Barrier,
    Block,
    Branch,
    Call,
    Kernel,
    Loop,
    MemAccess,
    Scaling,
    Stmt,
)
from .options import CompileOptions
from .passes import KernelPass, PassContext

_WIDENABLE_PATTERNS = (AccessPattern.UNIT, AccessPattern.BROADCAST)


def _has_vectorizable_loop(block: Block) -> bool:
    for stmt in block:
        if isinstance(stmt, Loop):
            if stmt.vectorizable or _has_vectorizable_loop(stmt.body):
                return True
        elif isinstance(stmt, Branch):
            if _has_vectorizable_loop(stmt.body):
                return True
            if stmt.orelse is not None and _has_vectorizable_loop(stmt.orelse):
                return True
        elif isinstance(stmt, Call):
            if _has_vectorizable_loop(stmt.body):
                return True
    return False


def _widen_stmt(stmt: Stmt, w: int, scalar_arith: bool) -> Stmt:
    """Widen one statement by ``w`` element coverage.

    Vectorizable unit-stride work becomes a vector op; anything else
    simply executes ``w`` times per (now wider) iteration.
    """
    if isinstance(stmt, Arith):
        if stmt.vectorizable and not scalar_arith and stmt.dtype.width == 1:
            return stmt.widened(w)
        if stmt.scaling == Scaling.PER_ELEMENT:
            return dataclasses.replace(stmt, count=stmt.count * w)
        return stmt
    if isinstance(stmt, MemAccess):
        if stmt.vectorizable and stmt.dtype.width == 1 and stmt.pattern in _WIDENABLE_PATTERNS:
            return stmt.widened(w)
        if stmt.scaling == Scaling.PER_ELEMENT:
            return dataclasses.replace(stmt, count=stmt.count * w)
        return stmt
    if isinstance(stmt, Atomic):
        if stmt.scaling == Scaling.PER_ELEMENT:
            return dataclasses.replace(stmt, count=stmt.count * w)
        return stmt
    if isinstance(stmt, Barrier):
        return stmt
    if isinstance(stmt, Branch):
        # A data-dependent branch cannot be folded into a lane mask in
        # this model: it executes per element, body untouched.
        if stmt.scaling == Scaling.PER_ELEMENT:
            return dataclasses.replace(stmt, count=stmt.count * w)
        return stmt
    if isinstance(stmt, Loop):
        # A loop that is not itself vectorizable (e.g. a filter-tap or
        # k-dimension loop) still runs once per *vector* of elements:
        # its body is widened across the covered elements.
        return dataclasses.replace(stmt, body=_widen_block(stmt.body, w, scalar_arith))
    if isinstance(stmt, Call):
        return dataclasses.replace(stmt, body=_widen_block(stmt.body, w, scalar_arith))
    raise TypeError(f"unknown statement {stmt!r}")  # pragma: no cover


def _widen_block(block: Block, w: int, scalar_arith: bool) -> Block:
    return Block(tuple(_widen_stmt(s, w, scalar_arith) for s in block))


def _rewrite_innermost_loops(block: Block, w: int, scalar_arith: bool, ctx: PassContext) -> Block:
    """Strip-mine innermost vectorizable loops by ``w``."""
    out: list[Stmt] = []
    for stmt in block:
        if isinstance(stmt, Loop) and stmt.vectorizable and not _has_vectorizable_loop(stmt.body):
            main_trip = math.floor(stmt.trip / w)
            remainder = stmt.trip - main_trip * w
            if main_trip > 0:
                out.append(
                    dataclasses.replace(
                        stmt,
                        trip=float(main_trip),
                        body=_widen_block(stmt.body, w, scalar_arith),
                        vectorizable=False,
                    )
                )
            if remainder > 1e-12:
                if stmt.static_trip and abs(stmt.trip - round(stmt.trip)) < 1e-9:
                    ctx.info(
                        f"vectorize: scalar epilogue of {remainder:g} iterations "
                        f"(trip {stmt.trip:g} % width {w})"
                    )
                out.append(
                    dataclasses.replace(stmt, trip=float(remainder), vectorizable=False)
                )
        elif isinstance(stmt, Loop):
            out.append(
                dataclasses.replace(
                    stmt, body=_rewrite_innermost_loops(stmt.body, w, scalar_arith, ctx)
                )
            )
        elif isinstance(stmt, Branch):
            new_body = _rewrite_innermost_loops(stmt.body, w, scalar_arith, ctx)
            new_orelse = (
                _rewrite_innermost_loops(stmt.orelse, w, scalar_arith, ctx)
                if stmt.orelse is not None
                else None
            )
            out.append(dataclasses.replace(stmt, body=new_body, orelse=new_orelse))
        elif isinstance(stmt, Call):
            out.append(
                dataclasses.replace(
                    stmt, body=_rewrite_innermost_loops(stmt.body, w, scalar_arith, ctx)
                )
            )
        else:
            out.append(stmt)
    return Block(tuple(out))


class VectorizePass(KernelPass):
    """Widen the kernel to the requested OpenCL vector width."""

    name = "vectorize"

    def applies(self, options: CompileOptions) -> bool:
        return options.vector_width > 1 or options.vector_loads

    def run(self, kernel: Kernel, options: CompileOptions, ctx: PassContext) -> Kernel:
        # vector_loads-only mode: use the native 128-bit width for memory
        # ops but keep compute scalar (paper: "such operations should be
        # also used in kernels that do not take advantage of vector
        # registers").
        scalar_arith = options.vector_width == 1
        w = options.vector_width if options.vector_width > 1 else 4
        if _has_vectorizable_loop(kernel.body):
            body = _rewrite_innermost_loops(kernel.body, w, scalar_arith, ctx)
            ctx.info(f"vectorize: strip-mined innermost loops to width {w}")
            return kernel.with_body(body)
        body = _widen_block(kernel.body, w, scalar_arith)
        ctx.info(
            f"vectorize: streaming kernel widened to {w} elements/work-item "
            f"(global size shrinks by {w}x)"
        )
        return kernel.with_body(body).with_elems_per_item(kernel.elems_per_item * w)
