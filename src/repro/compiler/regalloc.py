"""Register allocation model for the Midgard shader core.

Midgard register facts (ARM Mali-T600 OpenCL Developer Guide / public
driver sources): each shader core has a unified file of 128-bit general
purpose registers.  A thread using at most 4 of them runs at the
maximum thread count (256 in flight per core); each doubling of the
per-thread register footprint halves the resident thread count, and
beyond a hard limit the compiler cannot allocate the kernel at all —
the runtime then reports ``CL_OUT_OF_RESOURCES``.  This is the
mechanism behind two of the paper's Figure 2(b) observations:

* the optimized double-precision ``nbody`` and ``2dcon`` kernels fail
  with ``CL_OUT_OF_RESOURCES`` (a ``double8`` value alone is two
  registers; vectorized + unrolled bodies overflow the file), and
* "using types wider than the underlying hardware can improve the
  instruction-level scheduling, but also increase register pressure".

The model: a kernel's live-value estimate (``Kernel.base_live_values``,
an honest count of simultaneously-live scalars in the source) is scaled
by the register *footprint per value* (vector width × element size,
minimum one 128-bit register) and by unrolling (unrolled iterations
overlap about 60 % of their live ranges).
"""

from __future__ import annotations

import dataclasses
import math

from ..errors import RegisterAllocationError
from ..ir.analysis import analyze, max_unroll
from ..ir.dtypes import NATIVE_REGISTER_BITS
from ..ir.nodes import (
    AccessPattern,
    Block,
    Kernel,
    MemAccess,
    MemKind,
    MemSpace,
    Scaling,
)
from .options import CompileOptions
from .passes import PassContext

#: registers at or below which the maximum thread count is available
FULL_OCCUPANCY_REGISTERS = 4
#: maximum threads resident per shader core at full occupancy
MAX_THREADS_PER_CORE = 256
#: registers above which values spill to (unified) memory
SPILL_THRESHOLD = 16
#: registers beyond which allocation fails -> CL_OUT_OF_RESOURCES
HARD_REGISTER_LIMIT = 32
#: fraction of an unrolled iteration's live range overlapping the next
UNROLL_LIVE_OVERLAP = 0.6


@dataclasses.dataclass(frozen=True)
class RegisterReport:
    """Outcome of register allocation for one compiled kernel."""

    live_values: float
    registers_128: int
    threads_per_core: int
    occupancy: float
    spilled_registers: int
    spill_accesses_per_item: float

    @property
    def spills(self) -> bool:
        return self.spilled_registers > 0


def _dominant_scalar_bits(kernel: Kernel) -> int:
    """Bit width of the widest-used float base (f64 dominates if present)."""
    mix = analyze(kernel)
    bits = 32
    for (_, base, _w, _acc) in mix.arith:
        if base == "f64":
            return 64
        if base in ("i64", "u64"):
            bits = max(bits, 64)
    return bits


def estimate_registers(kernel: Kernel) -> tuple[float, int]:
    """Estimated (live_values, 128-bit registers) for the kernel."""
    mix = analyze(kernel)
    width = mix.max_vector_width()
    scalar_bits = _dominant_scalar_bits(kernel)
    unroll = max_unroll(kernel.body)

    live = kernel.base_live_values * (1.0 + UNROLL_LIVE_OVERLAP * (unroll - 1))
    # scalar values pack several to a 128-bit register; vector values of
    # width w need ceil(w * bits / 128) registers each
    bits_per_value = scalar_bits * width
    registers = live * bits_per_value / NATIVE_REGISTER_BITS
    return live, max(1, math.ceil(registers))


def allocate(kernel: Kernel, options: CompileOptions, ctx: PassContext) -> tuple[Kernel, RegisterReport]:
    """Run register allocation; may insert spill code or fail.

    Returns the (possibly spill-augmented) kernel and a report.  Raises
    :class:`RegisterAllocationError` when the kernel cannot be allocated
    at all, which the OpenCL runtime surfaces as ``CL_OUT_OF_RESOURCES``.
    """
    live, registers = estimate_registers(kernel)

    if registers > HARD_REGISTER_LIMIT:
        raise RegisterAllocationError(
            f"kernel {kernel.name!r} needs {registers} 128-bit registers "
            f"(live={live:.1f}), exceeding the hard limit of {HARD_REGISTER_LIMIT}",
            registers_required=registers,
            register_limit=HARD_REGISTER_LIMIT,
        )

    spilled = max(0, registers - SPILL_THRESHOLD)
    spill_accesses = 0.0
    if spilled:
        # Each spilled register costs one store + one reload per loop
        # iteration it lives across; on Mali the spill slots are in the
        # unified (global) memory.  Without loops, once per work-item.
        mix = analyze(kernel)
        per_item_iterations = max(mix.loop_headers, 1.0)
        spill_accesses = 2.0 * spilled * per_item_iterations
        spill_stmt_store = MemAccess(
            kind=MemKind.STORE,
            space=MemSpace.GLOBAL,
            dtype=_spill_dtype(),
            pattern=AccessPattern.UNIT,
            count=spill_accesses / 2.0,
            scaling=Scaling.PER_ITEM,
            vectorizable=False,
            param=None,
        )
        spill_stmt_load = dataclasses.replace(spill_stmt_store, kind=MemKind.LOAD)
        kernel = kernel.with_body(
            Block(kernel.body.stmts + (spill_stmt_store, spill_stmt_load))
        )
        ctx.warn(
            f"regalloc: spilled {spilled} registers "
            f"({spill_accesses:.0f} extra memory accesses per work-item)"
        )
        registers_effective = SPILL_THRESHOLD
    else:
        registers_effective = registers

    threads = _threads_for_registers(registers_effective)
    report = RegisterReport(
        live_values=live,
        registers_128=registers,
        threads_per_core=threads,
        occupancy=threads / MAX_THREADS_PER_CORE,
        spilled_registers=spilled,
        spill_accesses_per_item=spill_accesses,
    )
    ctx.info(
        f"regalloc: {registers} regs, {threads} threads/core "
        f"(occupancy {report.occupancy:.2f})"
    )
    return kernel, report


def _threads_for_registers(registers: int) -> int:
    """Resident threads per core: halves with each register doubling."""
    if registers <= FULL_OCCUPANCY_REGISTERS:
        return MAX_THREADS_PER_CORE
    doublings = math.ceil(math.log2(registers / FULL_OCCUPANCY_REGISTERS))
    return max(MAX_THREADS_PER_CORE >> doublings, 8)


def fits_register_file(report: RegisterReport, scale: float = 1.0) -> bool:
    """Whether a compiled kernel can launch on a scaled register file.

    ``scale`` is :attr:`~repro.mali.config.MaliConfig.register_file_scale`.
    Compilation always enforces the baseline :data:`HARD_REGISTER_LIMIT`
    (the compiler targets the T604 ISA); a *smaller* file re-checks the
    kernel's raw demand against the shrunken capacity at launch time —
    the design-space knob that turns register-hungry DP kernels into
    ``CL_OUT_OF_RESOURCES`` on leaner SoC variants.
    """
    if scale == 1.0:
        return True
    return report.registers_128 <= HARD_REGISTER_LIMIT * scale


def threads_for_scale(report: RegisterReport, scale: float = 1.0) -> int:
    """Resident threads per core on a scaled register file.

    The baseline path (``scale == 1.0``) is exactly the compile-time
    :attr:`RegisterReport.threads_per_core`.  Otherwise the kernel's
    effective register demand (post-spill, like the compile-time path)
    shrinks proportionally to the larger file — more threads fit — or
    grows on a smaller one.  Spill decisions themselves stay frozen at
    compile time: the compiler does not know the launch target.
    """
    if scale == 1.0:
        return report.threads_per_core
    effective = SPILL_THRESHOLD if report.spilled_registers else report.registers_128
    demand = max(1, math.ceil(effective / scale))
    return _threads_for_registers(demand)


def _spill_dtype():
    from ..ir.dtypes import DType

    return DType("f32", 4)  # one 128-bit register per spill slot
