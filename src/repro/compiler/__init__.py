"""The Mali OpenCL kernel-compiler model.

Transforms kernel IR under :class:`CompileOptions` (the Section III
optimization switches), estimates register pressure and occupancy, and
reproduces the driver-stack failure modes the paper reports.
"""

from .layout import SoaLayoutPass
from .options import NAIVE, CompileOptions
from .passes import KernelPass, PassContext, run_pipeline
from .pipeline import CompiledKernel, DriverQuirk, compile_kernel, default_passes
from .qualifiers import QualifiersPass, REDUNDANT_LOAD_ELIMINATION
from .regalloc import (
    FULL_OCCUPANCY_REGISTERS,
    HARD_REGISTER_LIMIT,
    MAX_THREADS_PER_CORE,
    SPILL_THRESHOLD,
    RegisterReport,
    allocate,
    estimate_registers,
)
from .report import format_report
from .unroll import UnrollPass
from .vectorize import VectorizePass

__all__ = [
    "CompileOptions",
    "CompiledKernel",
    "DriverQuirk",
    "FULL_OCCUPANCY_REGISTERS",
    "HARD_REGISTER_LIMIT",
    "KernelPass",
    "MAX_THREADS_PER_CORE",
    "NAIVE",
    "PassContext",
    "QualifiersPass",
    "REDUNDANT_LOAD_ELIMINATION",
    "RegisterReport",
    "SPILL_THRESHOLD",
    "SoaLayoutPass",
    "UnrollPass",
    "VectorizePass",
    "allocate",
    "compile_kernel",
    "default_passes",
    "estimate_registers",
    "format_report",
    "run_pipeline",
]
