"""Directives and type qualifiers (``inline``, ``const``, ``restrict``).

The paper's "Directives and Type Qualifiers" optimization acts through
three compiler mechanisms, each modelled explicitly:

* **inline** — helper calls stop paying call overhead and enlarge basic
  blocks: every :class:`~repro.ir.nodes.Call` becomes ``inlined``.
* **const / restrict** — with alias information the compiler may keep
  loop-invariant loads in registers instead of re-loading them after
  every potentially-aliasing store.  We model this as eliminating a
  calibrated fraction of ``BROADCAST``-pattern and ``__constant`` loads
  (those are the loop-invariant streams in all nine benchmarks).
* A small reduction in address-recomputation integer ops, since
  ``restrict`` lets the compiler CSE pointer arithmetic.

Without the qualifiers none of this is legal, which is why the naive
OpenCL ports leave the performance on the table.
"""

from __future__ import annotations

import dataclasses

from ..ir.nodes import (
    AccessPattern,
    Arith,
    Block,
    Branch,
    BufferParam,
    Call,
    Kernel,
    Loop,
    MemAccess,
    MemKind,
    MemSpace,
    Stmt,
)
from .options import CompileOptions
from .passes import KernelPass, PassContext

#: fraction of loop-invariant loads the compiler can register-promote
#: once aliasing is ruled out (the rest still re-load across barriers,
#: calls and register-pressure boundaries)
REDUNDANT_LOAD_ELIMINATION = 0.70

#: fraction of index-arithmetic integer ops removed by pointer CSE
INDEX_CSE_FRACTION = 0.15


def _rewrite(block: Block) -> Block:
    out: list[Stmt] = []
    for stmt in block:
        if isinstance(stmt, MemAccess):
            invariant = stmt.kind == MemKind.LOAD and (
                stmt.pattern == AccessPattern.BROADCAST or stmt.space == MemSpace.CONSTANT
            )
            if invariant:
                out.append(
                    dataclasses.replace(stmt, count=stmt.count * (1.0 - REDUNDANT_LOAD_ELIMINATION))
                )
            else:
                out.append(stmt)
        elif isinstance(stmt, Arith):
            if not stmt.vectorizable and stmt.dtype.is_integer:
                out.append(dataclasses.replace(stmt, count=stmt.count * (1.0 - INDEX_CSE_FRACTION)))
            else:
                out.append(stmt)
        elif isinstance(stmt, Call):
            out.append(dataclasses.replace(stmt, body=_rewrite(stmt.body), inlined=True))
        elif isinstance(stmt, Branch):
            new_orelse = _rewrite(stmt.orelse) if stmt.orelse is not None else None
            out.append(dataclasses.replace(stmt, body=_rewrite(stmt.body), orelse=new_orelse))
        elif isinstance(stmt, Loop):
            out.append(dataclasses.replace(stmt, body=_rewrite(stmt.body)))
        else:
            out.append(stmt)
    return Block(tuple(out))


class QualifiersPass(KernelPass):
    """Apply ``inline``/``const``/``restrict`` and their compiler effects."""

    name = "qualifiers"

    def applies(self, options: CompileOptions) -> bool:
        return options.qualifiers

    def run(self, kernel: Kernel, options: CompileOptions, ctx: PassContext) -> Kernel:
        new_params = tuple(
            dataclasses.replace(p, is_const=True, is_restrict=True)
            if isinstance(p, BufferParam)
            else p
            for p in kernel.params
        )
        body = _rewrite(kernel.body)
        ctx.info(
            "qualifiers: inline all calls; const/restrict enables "
            f"{REDUNDANT_LOAD_ELIMINATION:.0%} loop-invariant load elimination"
        )
        return dataclasses.replace(kernel, params=new_params, body=body)
