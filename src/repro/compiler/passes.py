"""Compiler pass infrastructure.

Passes are pure functions ``Kernel -> Kernel`` that record what they did
in a shared :class:`PassContext`.  The pipeline (see
:mod:`repro.compiler.pipeline`) fixes the pass order to match how ARM's
OpenCL compiler would see the source-level optimizations the paper
applies: data-layout and qualifier changes are source rewrites, so they
run before vectorization and unrolling.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from ..ir.nodes import Kernel
from .options import CompileOptions


@dataclass
class PassContext:
    """Mutable log shared by the passes of one compilation."""

    log: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)

    def info(self, message: str) -> None:
        self.log.append(message)

    def warn(self, message: str) -> None:
        self.warnings.append(message)


class KernelPass(abc.ABC):
    """A single IR-to-IR transformation."""

    #: short identifier used in compilation reports
    name: str = "pass"

    @abc.abstractmethod
    def applies(self, options: CompileOptions) -> bool:
        """Whether the options request this pass at all."""

    @abc.abstractmethod
    def run(self, kernel: Kernel, options: CompileOptions, ctx: PassContext) -> Kernel:
        """Transform the kernel; must not mutate the input tree."""


def run_pipeline(
    kernel: Kernel,
    options: CompileOptions,
    passes: list[KernelPass],
    ctx: PassContext,
) -> Kernel:
    """Run the requested passes in order."""
    for p in passes:
        if p.applies(options):
            before = kernel
            kernel = p.run(kernel, options, ctx)
            if kernel is not before:
                ctx.info(f"{p.name}: applied")
    return kernel
