"""Human-readable compilation reports (``-cl-verbose`` analogue)."""

from __future__ import annotations

from ..ir.analysis import analyze
from ..ir.nodes import MemKind, MemSpace
from .pipeline import CompiledKernel


def format_report(compiled: CompiledKernel) -> str:
    """Render a compilation summary like a verbose compiler dump."""
    mix = compiled.mix or analyze(compiled.kernel)
    lines = [
        f"kernel {compiled.name!r}  [{compiled.options.describe()}]",
        f"  elements/work-item : {compiled.elems_per_item}",
        f"  registers (128-bit): {compiled.registers.registers_128}"
        + (f"  (spilled {compiled.registers.spilled_registers})" if compiled.registers.spills else ""),
        f"  threads/core       : {compiled.registers.threads_per_core}"
        f"  (occupancy {compiled.registers.occupancy:.2f})",
        f"  arith issues/item  : {mix.arith_issues():.2f}",
        f"  mem issues/item    : {mix.mem_issues():.2f}",
        f"  flops/item         : {mix.flops():.2f}",
        f"  global bytes/item  : {mix.bytes_moved(space=MemSpace.GLOBAL):.1f}"
        f"  (ld {mix.bytes_moved(space=MemSpace.GLOBAL, kind=MemKind.LOAD):.1f}"
        f" / st {mix.bytes_moved(space=MemSpace.GLOBAL, kind=MemKind.STORE):.1f})",
    ]
    if mix.atomic_ops() > 0:
        lines.append(f"  atomics/item       : {mix.atomic_ops():.2f}")
    if mix.loop_headers > 0:
        lines.append(f"  loop headers/item  : {mix.loop_headers:.2f}")
    for entry in compiled.log:
        lines.append(f"  note: {entry}")
    for entry in compiled.warnings:
        lines.append(f"  WARN: {entry}")
    return "\n".join(lines)
