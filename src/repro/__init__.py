"""repro — reproduction of "Energy Efficient HPC on Embedded SoCs:
Optimization Techniques for Mali GPU" (Grasso et al., IPDPS 2014).

The paper's evaluation ran on real hardware (a Samsung Exynos 5250
Arndale board with a Mali-T604 GPU, measured by a bench power meter);
this library rebuilds the entire measurement stack as an analytical
architecture simulation:

* :mod:`repro.ir` / :mod:`repro.compiler` — an OpenCL kernel IR and the
  Mali compiler model that applies the paper's Section III optimizations
  (vectorization, vector-size tuning, loop unrolling, AOS→SOA,
  qualifiers) with register allocation and the driver's failure modes;
* :mod:`repro.mali` / :mod:`repro.cpu` / :mod:`repro.memory` — timing
  models for the Mali-T604, the Cortex-A15 (serial and OpenMP) and the
  shared DDR3L memory system;
* :mod:`repro.power` — board power rails and the simulated Yokogawa
  WT230 power meter;
* :mod:`repro.ocl` — a mini-OpenCL host API (buffers, map/unmap,
  NDRange launches, events) backed by the simulated device;
* :mod:`repro.benchmarks` — the nine HPC benchmarks in all four
  versions (Serial / OpenMP / OpenCL / OpenCL Opt), with real NumPy
  numerics validated against references;
* :mod:`repro.experiments` — the campaign engine (parallel grid
  execution, content-addressed run cache, structured tracing) and the
  harness regenerating every figure of the paper's evaluation
  (Figures 2, 3 and 4, single and double precision) plus the §V-D
  summary.

Quick start::

    from repro import run_grid, figure2, format_figure
    results = run_grid(scale=0.25)          # small instance of the grid
    print(format_figure(figure2(results)))  # Figure 2(a)

Campaigns (parallel execution + run cache)::

    from repro import Campaign, CampaignSpec
    campaign = Campaign(CampaignSpec(scale=0.25), cache_dir=".repro_cache")
    results = campaign.run(jobs=4)          # same bytes as jobs=1
    print(campaign.report.describe())       # cache hits, failures, wall
"""

from .benchmarks import (
    BENCHMARKS,
    Benchmark,
    PAPER_ORDER,
    Precision,
    RunResult,
    Version,
    all_benchmarks,
    create,
    run_version,
)
from .calibration import ExynosPlatform, default_platform, validate_platform
from .compiler import CompileOptions, CompiledKernel, compile_kernel
from .experiments import (
    Campaign,
    CampaignJournal,
    CampaignReport,
    CampaignSpec,
    DeadlineExceeded,
    ResultSet,
    figure2,
    figure3,
    figure4,
    format_experiments_markdown,
    format_figure,
    format_summary,
    run_grid,
    summarize,
)
from .errors import (
    CLBuildProgramFailure,
    CLError,
    CLOutOfResources,
    CompilerError,
    ReproError,
)

__version__ = "1.2.0"

__all__ = [
    "BENCHMARKS",
    "Benchmark",
    "CLBuildProgramFailure",
    "CLError",
    "CLOutOfResources",
    "Campaign",
    "CampaignJournal",
    "CampaignReport",
    "CampaignSpec",
    "DeadlineExceeded",
    "CompileOptions",
    "CompiledKernel",
    "CompilerError",
    "ExynosPlatform",
    "PAPER_ORDER",
    "Precision",
    "ReproError",
    "ResultSet",
    "RunResult",
    "Version",
    "all_benchmarks",
    "compile_kernel",
    "create",
    "default_platform",
    "figure2",
    "figure3",
    "figure4",
    "format_experiments_markdown",
    "format_figure",
    "format_summary",
    "run_grid",
    "run_version",
    "summarize",
    "validate_platform",
    "__version__",
]
