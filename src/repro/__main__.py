"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``figures``   — run the grid and print Figures 2/3/4 + the summary
* ``run``       — run one benchmark's four versions
* ``dvfs``      — DVFS governors and race/pace energy policies per benchmark
* ``tune``      — show the autotuner sweep for one benchmark
* ``sweep``     — problem-size sweep (Serial vs Opt crossover)
* ``roofline``  — place every benchmark on the device rooflines
* ``describe``  — print the simulated platform inventory
* ``whatif``    — next-generation-hardware and fixed-driver studies
* ``designspace`` — batch-price a SoC design space, print Pareto frontiers
* ``cache``     — inspect or clear the run cache and persistent perf tier
* ``resume``    — finish a journaled campaign whose process was killed
* ``worker``    — serve as a remote campaign worker (``--workers`` target)
"""

from __future__ import annotations

import argparse
import sys

from .benchmarks import PAPER_ORDER, Precision, Version, create, run_version
from .calibration import default_platform


def _precision(args) -> Precision:
    return Precision.DOUBLE if args.double else Precision.SINGLE


def cmd_figures(args) -> int:
    from .experiments import (
        Campaign,
        CampaignSpec,
        all_figures,
        format_figure,
        format_summary,
        summarize,
    )

    precisions = (
        (Precision.SINGLE,) if args.sp_only else (Precision.SINGLE, Precision.DOUBLE)
    )
    extra = {}
    if args.governors:
        governors = tuple(args.governors)
        # the figure builders normalize against the fixed-frequency
        # rows, so the fixed plane always rides along
        if "fixed" not in governors:
            governors = ("fixed",) + governors
        extra["governors"] = governors
    spec = CampaignSpec(
        scale=args.scale,
        precisions=precisions,
        energy_deadline_s=args.energy_deadline,
        **extra,
    )
    campaign = Campaign(
        spec,
        cache_dir=None if args.no_cache else args.cache_dir,
        perf_dir=None if args.no_cache else _perf_dir(args),
        trace=args.trace,
        retries=args.retries,
        cell_timeout_s=args.cell_timeout,
        deadline_s=args.deadline,
        workers=_workers(args),
    )
    results = campaign.run(jobs=args.jobs, journal_dir=args.journal_dir)
    for series in all_figures(results, precisions):
        print(format_figure(series))
        print()
    print(format_summary(summarize(results)))
    print()
    print(campaign.report.describe())
    if args.governors:
        governed = sorted(
            ((key, run) for key, run in results.results.items() if len(key) > 3),
            key=lambda kv: (kv[0][0], kv[0][1].value, kv[0][2].value, kv[0][3]),
        )
        if governed:
            print()
            print("governed runs (time/energy vs the fixed row):")
            for key, run in governed:
                benchmark, version, precision, governor = key
                if not run.ok:
                    print(
                        f"  {benchmark:8s} {version.value:11s} "
                        f"[{precision.label}] {governor:16s} FAILED: {run.failure}"
                    )
                    continue
                fixed = results.get(benchmark, version, precision)
                t_ratio = run.elapsed_s / fixed.elapsed_s if fixed.ok else float("nan")
                e_ratio = run.energy_j / fixed.energy_j if fixed.ok else float("nan")
                print(
                    f"  {benchmark:8s} {version.value:11s} [{precision.label}] "
                    f"{governor:16s} {run.elapsed_s * 1e3:9.3f} ms "
                    f"{run.energy_j:10.5f} J  (x{t_ratio:.2f} time, "
                    f"x{e_ratio:.2f} energy)"
                )
    return 0


def cmd_run(args) -> int:
    bench = create(args.benchmark, precision=_precision(args), scale=args.scale)
    print(f"{args.benchmark}: {bench.description}")
    baseline = None
    for version in Version:
        r = run_version(bench, version=version)
        if not r.ok:
            print(f"  {version.value:11s}  FAILED: {r.failure}")
            continue
        if baseline is None:
            baseline = r
        speedup, power, energy = r.relative_to(baseline)
        tag = r.options.describe() if r.options else ""
        print(
            f"  {version.value:11s} {r.elapsed_s * 1e3:9.3f} ms  "
            f"{r.mean_power_w:5.2f} W  speedup {speedup:6.2f}  energy {energy:5.2f}  {tag}"
        )
    return 0


def cmd_dvfs(args) -> int:
    """Per-benchmark DVFS study: governors and race/pace policies.

    The deadline of the energy policies defaults to ``--deadline-factor``
    times the benchmark's own fixed-frequency elapsed time, so every
    benchmark gets a feasible-but-tight budget; ``--deadline`` overrides
    it with one absolute figure.
    """
    from .power import dvfs

    precision = _precision(args)
    version = Version(args.version)
    governors = tuple(args.governors)
    for governor in governors:
        if governor not in dvfs.GOVERNORS:
            print(f"unknown governor {governor!r}; choose from {dvfs.GOVERNORS}")
            return 2
    benchmarks = (args.benchmark,) if args.benchmark else PAPER_ORDER
    for name in benchmarks:
        bench = create(name, precision=precision, scale=args.scale)
        fixed = run_version(bench, version=version)
        if not fixed.ok:
            print(f"{name}: fixed-frequency run failed: {fixed.failure}")
            continue
        deadline = (
            args.deadline
            if args.deadline is not None
            else args.deadline_factor * fixed.elapsed_s
        )
        print(
            f"{name} [{precision.label}] {version.value} — "
            f"deadline {deadline * 1e3:.3f} ms"
        )
        print(
            f"  {'governor':18s} {'OPP MHz':>8s} {'work ms':>9s} "
            f"{'power W':>8s} {'energy J':>10s}"
        )
        print(
            f"  {'fixed':18s} {bench.platform.mali.clock_hz / 1e6:8.1f} "
            f"{fixed.elapsed_s * 1e3:9.3f} {fixed.mean_power_w:8.3f} "
            f"{fixed.energy_j:10.5f}"
        )
        for governor in governors:
            if governor == dvfs.GOVERNOR_DEFAULT:
                continue
            r = run_version(
                bench,
                version=version,
                governor=governor,
                energy_deadline_s=deadline,
            )
            if not r.ok:
                print(f"  {governor:18s} FAILED: {r.failure}")
                continue
            info = r.diagnostics.get("dvfs", {})
            opp_mhz = info.get("opp_hz", float("nan")) / 1e6
            print(
                f"  {governor:18s} {opp_mhz:8.1f} {r.elapsed_s * 1e3:9.3f} "
                f"{r.mean_power_w:8.3f} {r.energy_j:10.5f}"
            )
        print()
    return 0


def cmd_tune(args) -> int:
    from .optimizations.autotune import sweep

    bench = create(args.benchmark, precision=_precision(args), scale=args.scale)
    result = sweep(bench)
    print(f"{args.benchmark} [{_precision(args).label}]: "
          f"{len(result.trials)} candidates, {result.n_infeasible} infeasible")
    feasible = sorted((t for t in result.trials if t.feasible), key=lambda t: t.seconds)
    for trial in feasible[: args.top]:
        local = "driver" if trial.local_size is None else f"L={trial.local_size}"
        print(f"  {trial.seconds * 1e3:9.3f} ms  {trial.options.describe():24s} {local}")
    return 0


def cmd_sweep(args) -> int:
    from .experiments.sweep import format_sweep, run_size_sweep

    sweep_result = run_size_sweep(
        args.benchmark,
        scales=tuple(args.scales),
        precision=_precision(args),
    )
    print(format_sweep(sweep_result))
    return 0


def cmd_roofline(args) -> int:
    from .analysis import cpu_roofline, format_roofline_chart, gpu_roofline, place
    from .compiler.options import NAIVE

    dp = args.double
    gpu = gpu_roofline(double_precision=dp)
    cpu = cpu_roofline(double_precision=dp)
    placements = []
    for name in PAPER_ORDER:
        bench = create(name, precision=_precision(args), scale=args.scale)
        ir = bench.kernel_ir(NAIVE)
        placements.append(
            place(
                ir,
                gpu,
                traits=bench.gpu_traits(NAIVE),
                caches=bench.platform.gpu_caches(),
                n_items=bench.gpu_work_items(),
            )
        )
    print(format_roofline_chart(placements))
    print(f"\nCPU ridge for comparison: {cpu.ridge_intensity:.2f} flop/byte "
          f"({cpu.peak_flops / 1e9:.1f} GF)")
    return 0


def cmd_describe(args) -> int:
    platform = default_platform()
    print(platform.mali.describe())
    print()
    print(f"CPU: {platform.cpu.cores}x Cortex-A15 @ {platform.cpu.clock_hz / 1e9:.1f} GHz")
    print(f"DRAM: {platform.dram.peak_bandwidth / 1e9:.1f} GB/s peak "
          f"(GPU cap {platform.dram.gpu_cap / 1e9:.1f} GB/s)")
    print(f"Meter: Yokogawa WT230 @ {platform.meter_sample_hz:.0f} Hz, "
          f"{platform.meter_accuracy:.1%} accuracy")
    return 0


def cmd_whatif(args) -> int:
    from .whatif import (
        compare_platforms,
        fixed_driver_platform,
        mali_t628_platform,
        mali_t760_platform,
        run_fixed_driver_amcd,
    )

    platforms = {
        "Mali-T604 (paper)": default_platform(),
        "Mali-T628 MP6": mali_t628_platform(),
        "Mali-T760 MP8": mali_t760_platform(),
    }
    print(f"next-generation hardware: {args.benchmark} Opt speedup over Serial")
    cmp = compare_platforms(args.benchmark, platforms, scale=args.scale)
    for name in platforms:
        speedup = cmp.speedup(name)
        print(f"  {name:20s} {'FAILED' if speedup is None else f'{speedup:6.2f}x'}")

    print("\nfixed-driver counterfactual: double-precision amcd")
    r = run_fixed_driver_amcd(scale=args.scale)
    if r.ok:
        bench = create("amcd", precision=Precision.DOUBLE, scale=args.scale,
                       platform=fixed_driver_platform())
        serial = run_version(bench, version=Version.SERIAL)
        speedup, _, energy = r.relative_to(serial)
        print(f"  compiles and runs: speedup {speedup:.2f}x, energy {energy:.2f} "
              f"({r.options.describe()})")
    else:  # pragma: no cover - defensive
        print(f"  still failing: {r.failure}")
    return 0


def cmd_designspace(args) -> int:
    from .calibration.socspace import EXYNOS_5250, default_space, load_configs
    from .designspace import (
        AGGREGATE,
        equal_energy_speedup,
        equal_time_energy,
        evaluate_space,
        export_frontier,
        frontier,
    )

    configs = load_configs(args.configs) if args.configs else default_space()
    precisions = (
        (Precision.SINGLE,) if args.sp_only else (Precision.SINGLE, Precision.DOUBLE)
    )
    benchmark = args.benchmark or AGGREGATE
    result = evaluate_space(
        configs, precisions=precisions, scale=args.scale, seed=args.seed,
        jobs=args.jobs, stream=args.stream, chunk_size=args.chunk_size,
        prune=not args.no_prune, target_benchmark=benchmark, trace=args.trace,
    )
    print(result.describe())
    for precision in result.precisions:
        pool = result.select(benchmark=benchmark, precision=precision, version="Opt")
        front = frontier(pool)
        print(f"\nPareto frontier — {benchmark} [{precision}], Opt "
              f"({len(front)} of {len(pool)} configs):")
        print(f"  {'config':28s} {'seconds':>10s} {'watts':>7s} {'energy J':>9s}")
        for p in front:
            print(f"  {p.config_name:28s} {p.seconds:10.4f} {p.watts:7.2f} "
                  f"{p.energy_j:9.4f}")
        try:
            ref = result.point(EXYNOS_5250.name, benchmark, precision, "Serial")
        except KeyError:
            continue
        print(f"  vs exynos5250 Serial ({ref.seconds:.4f} s, {ref.energy_j:.4f} J):")
        ees = equal_energy_speedup(pool, ref)
        if ees is None:
            print("    equal-energy speedup: none (every Opt spends more energy)")
        else:
            print(f"    equal-energy speedup: {ees[0]:.2f}x ({ees[1].config_name})")
        ete = equal_time_energy(pool, ref)
        if ete is None:
            print("    equal-time energy: none (every Opt is slower)")
        else:
            print(f"    equal-time energy: {ete[0]:.4f} J ({ete[1].config_name})")
    if args.governors or args.deadline is not None:
        from .designspace import evaluate_dvfs

        dvfs_result = evaluate_dvfs(
            configs,
            precisions=precisions,
            scale=args.scale,
            seed=args.seed,
            governors=tuple(args.governors) if args.governors else None,
            benchmark=benchmark,
            deadline_s=args.deadline,
        )
        for precision in dvfs_result.precisions:
            front = dvfs_result.frontier_points(precision=precision)
            print(f"\nDVFS frontier — {benchmark} [{precision}] "
                  f"({len(front)} of {len(dvfs_result.select(precision=precision))}"
                  f" points):")
            print(f"  {'config':28s} {'governor':16s} {'OPP MHz':>8s} "
                  f"{'seconds':>10s} {'energy J':>9s}")
            for p in front:
                print(f"  {p.config_name:28s} {p.governor:16s} "
                      f"{p.opp_hz / 1e6:8.1f} {p.seconds:10.4f} {p.energy_j:9.4f}")
            if args.deadline is not None:
                pick = dvfs_result.deadline_pick(precision=precision)
                if pick is None:
                    print(f"  deadline {args.deadline:g}s: no (config, governor) "
                          "meets the budget")
                else:
                    print(f"  deadline {args.deadline:g}s pick: {pick.config_name} "
                          f"@{pick.governor} ({pick.opp_hz / 1e6:.1f} MHz, "
                          f"{pick.energy_j:.4f} J)")
    if args.export_frontier:
        n_rows = export_frontier(
            result, args.export_frontier, benchmark=benchmark,
            include_dominated=args.export_dominated,
        )
        print(f"\nwrote {n_rows} frontier rows to {args.export_frontier}")
    if args.output:
        import json as _json

        with open(args.output, "w", encoding="utf-8") as fh:
            _json.dump(result.to_dict(), fh, indent=2)
        print(f"\nwrote {args.output}")
    return 0


def _workers(args) -> tuple[str, ...] | None:
    """Parse ``--workers host:port,host:port`` into an address tuple."""
    raw = getattr(args, "workers", None)
    if not raw:
        return None
    return tuple(addr.strip() for addr in raw.split(",") if addr.strip())


def _perf_dir(args) -> str | None:
    """Resolve the persistent perf-tier root from CLI arguments.

    Defaults to ``<cache-dir>/perf`` so one ``--cache-dir`` governs
    both on-disk caches; ``--perf-dir`` overrides the location.
    """
    from pathlib import Path

    if getattr(args, "perf_dir", None):
        return args.perf_dir
    return str(Path(args.cache_dir) / "perf")


def cmd_cache(args) -> int:
    import json as _json

    from . import perf
    from .experiments.cache import RunCache
    from .perf.persist import PersistentStore

    run_cache = RunCache(args.cache_dir)
    store = PersistentStore(_perf_dir(args))

    if args.action == "path":
        payload = {"run_cache": str(run_cache.root), "perf_tier": str(store.root)}
        if args.json:
            print(_json.dumps(payload, indent=2, sort_keys=True))
        else:
            print(f"run cache: {payload['run_cache']}")
            print(f"perf tier: {payload['perf_tier']}")
        return 0

    if args.action == "clear":
        removed_runs = run_cache.clear()
        removed_perf = store.clear()
        payload = {"run_cache_removed": removed_runs, "perf_tier_removed": removed_perf}
        if args.json:
            print(_json.dumps(payload, indent=2, sort_keys=True))
        else:
            print(f"run cache: removed {removed_runs} entries")
            print(f"perf tier: removed {removed_perf} entries")
        return 0

    # stats
    payload = {
        "run_cache": {
            "path": str(run_cache.root),
            "entries": run_cache.entry_count(),
            "size_bytes": run_cache.size_bytes(),
        },
        "perf_tier": {
            "path": str(store.root),
            "namespace": store.namespace,
            "entries": store.entries(),
            "size_bytes": store.size_bytes(),
            "stale_namespaces": store.stale_namespaces(),
            "persisted_caches": sorted(perf.PERSISTED_CACHES),
        },
    }
    if args.json:
        print(_json.dumps(payload, indent=2, sort_keys=True))
        return 0
    rc = payload["run_cache"]
    print(f"run cache: {rc['path']}")
    print(f"  entries: {rc['entries']}, size: {rc['size_bytes']} bytes")
    pt = payload["perf_tier"]
    print(f"perf tier: {pt['path']} (namespace {pt['namespace']})")
    total = sum(pt["entries"].values())
    per_cache = ", ".join(f"{name} {n}" for name, n in pt["entries"].items()) or "none"
    print(f"  entries: {total} ({per_cache}), size: {pt['size_bytes']} bytes")
    if pt["stale_namespaces"]:
        print(f"  stale namespaces: {', '.join(pt['stale_namespaces'])} "
              f"(run `repro cache clear` to reclaim)")
    return 0


def cmd_resume(args) -> int:
    from pathlib import Path

    from .experiments import Campaign

    campaign = Campaign.resume(
        args.journal_dir,
        cache_dir=None if args.no_cache else args.cache_dir,
        perf_dir=None if args.no_cache else _perf_dir(args),
        trace=args.trace,
        retries=args.retries,
        cell_timeout_s=args.cell_timeout,
        deadline_s=args.deadline,
        workers=_workers(args),
    )
    results = campaign.run(jobs=args.jobs)
    if args.save:
        Path(args.save).write_text(results.to_json())
        print(f"saved {len(results.results)} runs to {args.save}")
    print(campaign.report.describe())
    return 0


def cmd_worker(args) -> int:
    from .experiments import serve_worker

    try:
        serve_worker(
            args.host,
            args.port,
            perf_dir=args.perf_dir,
            announce=lambda line: print(line, flush=True),
        )
    except KeyboardInterrupt:
        print("worker stopped", flush=True)
    return 0


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, benchmark=False):
        p.add_argument("--scale", type=float, default=0.5)
        p.add_argument("--double", action="store_true", help="double precision")
        if benchmark:
            p.add_argument("benchmark", choices=PAPER_ORDER)

    p = sub.add_parser("figures", help="regenerate Figures 2/3/4")
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--sp-only", action="store_true")
    p.add_argument("--jobs", type=_positive_int, default=1,
                   help="parallel worker processes (1 = in-process)")
    p.add_argument("--cache-dir", default=".repro_cache", metavar="DIR",
                   help="content-addressed run cache directory")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the run cache and the persistent perf tier")
    p.add_argument("--perf-dir", default=None, metavar="DIR",
                   help="persistent perf-cache tier root "
                        "(default: <cache-dir>/perf)")
    p.add_argument("--trace", default=None, metavar="PATH",
                   help="write per-run trace events to a JSONL file")
    p.add_argument("--retries", type=int, default=2, metavar="N",
                   help="times a cell whose pool worker died is retried "
                        "before it is recorded as a crashed run")
    p.add_argument("--journal-dir", default=None, metavar="DIR",
                   help="write a durable checkpoint journal; a killed "
                        "campaign is finished with `repro resume DIR`")
    p.add_argument("--cell-timeout", type=float, default=None, metavar="S",
                   help="wall-clock budget per grid cell; overruns are "
                        "recorded as timeout results")
    p.add_argument("--deadline", type=float, default=None, metavar="S",
                   help="wall-clock budget for the whole campaign "
                        "(overrun terminates with DeadlineExceeded)")
    p.add_argument("--governors", nargs="+", default=None, metavar="GOV",
                   help="extend the grid with a DVFS governor axis "
                        "(performance / powersave / ondemand / race_to_idle "
                        "/ pace_to_deadline); the fixed plane always rides "
                        "along as the figures baseline")
    p.add_argument("--energy-deadline", type=float, default=None, metavar="S",
                   help="per-cell deadline for the race_to_idle / "
                        "pace_to_deadline energy policies (unrelated to "
                        "--deadline, the campaign watchdog budget)")
    p.add_argument("--workers", default=None, metavar="HOST:PORT,...",
                   help="distribute execution across remote `repro worker` "
                        "processes (comma-separated addresses); losing "
                        "every worker degrades back to local execution")
    p.set_defaults(func=cmd_figures)

    p = sub.add_parser("run", help="run one benchmark's four versions")
    common(p, benchmark=True)
    p.set_defaults(func=cmd_run)

    p = sub.add_parser(
        "dvfs",
        help="DVFS governors and race/pace energy policies per benchmark",
        description="Runs each benchmark under the DVFS governors and "
                    "compares work time, mean power and energy against the "
                    "fixed-frequency run; the race_to_idle / "
                    "pace_to_deadline policies get a per-benchmark deadline "
                    "(--deadline-factor x the fixed elapsed time, or an "
                    "absolute --deadline).",
    )
    p.add_argument("benchmark", nargs="?", choices=PAPER_ORDER, default=None,
                   help="one benchmark (default: all nine)")
    p.add_argument("--scale", type=float, default=0.5)
    p.add_argument("--double", action="store_true", help="double precision")
    p.add_argument("--version", default=Version.OPENCL_OPT.value,
                   choices=[v.value for v in Version],
                   help="benchmark version to govern (default: OpenCL-Opt)")
    p.add_argument("--governors", nargs="+", metavar="GOV",
                   default=["performance", "powersave", "ondemand",
                            "race_to_idle", "pace_to_deadline"],
                   help="governors to run (default: all)")
    p.add_argument("--deadline", type=float, default=None, metavar="S",
                   help="absolute energy deadline for race/pace")
    p.add_argument("--deadline-factor", type=float, default=1.5, metavar="X",
                   help="deadline as a multiple of the fixed elapsed time "
                        "(default: 1.5)")
    p.set_defaults(func=cmd_dvfs)

    p = sub.add_parser("tune", help="autotuner sweep for one benchmark")
    common(p, benchmark=True)
    p.add_argument("--top", type=int, default=8)
    p.set_defaults(func=cmd_tune)

    p = sub.add_parser("sweep", help="problem-size sweep")
    common(p, benchmark=True)
    p.add_argument("--scales", type=float, nargs="+", default=[0.01, 0.05, 0.25, 1.0])
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser("roofline", help="roofline placement of all kernels")
    common(p)
    p.set_defaults(func=cmd_roofline)

    p = sub.add_parser("describe", help="print the simulated platform")
    p.set_defaults(func=cmd_describe)

    p = sub.add_parser("whatif", help="future hardware / fixed driver studies")
    common(p, benchmark=True)
    p.set_defaults(func=cmd_whatif)

    p = sub.add_parser(
        "designspace",
        help="batch-price a SoC design space, print Pareto frontiers",
        description="Evaluates the (configs x benchmarks x versions x "
                    "precisions) hypercube with the stacked pricing engine "
                    "and prints energy/performance Pareto frontiers plus "
                    "equal-energy / equal-time queries against the measured "
                    "Exynos 5250 point.",
    )
    p.add_argument("--configs", default=None, metavar="FILE",
                   help="JSON design-space file (default: the built-in "
                        "64-config sweep)")
    p.add_argument("--benchmark", default=None, choices=PAPER_ORDER,
                   help="frontier of one benchmark (default: the "
                        "across-benchmarks aggregate)")
    p.add_argument("--scale", type=float, default=0.5)
    p.add_argument("--seed", type=int, default=1234)
    p.add_argument("--sp-only", action="store_true",
                   help="single precision only")
    p.add_argument("--jobs", type=_positive_int, default=1,
                   help="parallel worker processes (1 = in-process)")
    p.add_argument("--stream", action="store_true",
                   help="chunked streaming evaluation with bound-based "
                        "pruning: memory stays O(chunk + frontier) instead "
                        "of O(space); same frontier as a full evaluation")
    p.add_argument("--chunk-size", type=_positive_int, default=256,
                   metavar="N", help="configs priced per streaming chunk "
                                     "(default: 256)")
    p.add_argument("--no-prune", action="store_true",
                   help="stream without the roofline/rail lower-bound "
                        "config pruning")
    p.add_argument("--trace", default=None, metavar="PATH",
                   help="append JSONL space_started / space_chunk_finished "
                        "/ space_finished progress events")
    p.add_argument("--export-frontier", default=None, metavar="PATH",
                   help="write the frontier for plotting (.csv, or JSON "
                        "otherwise) with config digests")
    p.add_argument("--export-dominated", action="store_true",
                   help="include dominated points (flagged "
                        "on_frontier=false) in --export-frontier")
    p.add_argument("--output", default=None, metavar="PATH",
                   help="write every design point as JSON")
    p.add_argument("--governors", nargs="+", default=None, metavar="GOV",
                   help="add a DVFS governor sweep over the configs and "
                        "print the (config, governor) frontier")
    p.add_argument("--deadline", type=float, default=None, metavar="S",
                   help="deadline for the race/pace policies and the "
                        "deadline-constrained min-energy query")
    p.set_defaults(func=cmd_designspace)

    p = sub.add_parser("cache", help="inspect or clear the on-disk caches")
    p.add_argument("action", choices=("stats", "clear", "path"),
                   help="stats: entry counts and sizes; clear: delete every "
                        "entry of both caches; path: print the cache roots")
    p.add_argument("--cache-dir", default=".repro_cache", metavar="DIR",
                   help="content-addressed run cache directory")
    p.add_argument("--perf-dir", default=None, metavar="DIR",
                   help="persistent perf-cache tier root "
                        "(default: <cache-dir>/perf)")
    p.add_argument("--json", action="store_true",
                   help="machine-readable JSON output")
    p.set_defaults(func=cmd_cache)

    p = sub.add_parser(
        "resume",
        help="finish a journaled campaign whose process was killed",
        description="Reconstructs the campaign from <journal-dir>/spec.pkl, "
                    "replays every cell the journal already checkpointed, "
                    "executes only the remainder, and produces a ResultSet "
                    "byte-identical to an uninterrupted run.",
    )
    p.add_argument("journal_dir", metavar="JOURNAL_DIR",
                   help="journal directory of the interrupted campaign")
    p.add_argument("--jobs", type=_positive_int, default=1,
                   help="parallel worker processes (1 = in-process)")
    p.add_argument("--save", default=None, metavar="PATH",
                   help="write the completed ResultSet JSON here")
    p.add_argument("--cache-dir", default=".repro_cache", metavar="DIR",
                   help="content-addressed run cache directory")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the run cache and the persistent perf tier")
    p.add_argument("--perf-dir", default=None, metavar="DIR",
                   help="persistent perf-cache tier root "
                        "(default: <cache-dir>/perf)")
    p.add_argument("--trace", default=None, metavar="PATH",
                   help="write per-run trace events to a JSONL file")
    p.add_argument("--retries", type=int, default=2, metavar="N",
                   help="times a cell whose pool worker died is retried "
                        "before it is recorded as a crashed run")
    p.add_argument("--cell-timeout", type=float, default=None, metavar="S",
                   help="wall-clock budget per grid cell")
    p.add_argument("--deadline", type=float, default=None, metavar="S",
                   help="wall-clock budget for the whole resumed campaign")
    p.add_argument("--workers", default=None, metavar="HOST:PORT,...",
                   help="distribute the remainder across remote "
                        "`repro worker` processes")
    p.set_defaults(func=cmd_resume)

    p = sub.add_parser(
        "worker",
        help="serve as a remote campaign worker",
        description="Runs a persistent remote worker that coordinators "
                    "target with --workers HOST:PORT.  The worker "
                    "advertises its protocol version, perf-tier schema "
                    "namespace and repro version at handshake; stale "
                    "workers are rejected by the coordinator.  Announces "
                    "'worker listening on HOST:PORT' once bound "
                    "(--port 0 picks a free port).",
    )
    p.add_argument("--host", default="127.0.0.1", metavar="HOST",
                   help="interface to bind (default: loopback)")
    p.add_argument("--port", type=int, default=0, metavar="PORT",
                   help="port to bind (default: 0 = ephemeral)")
    p.add_argument("--perf-dir", default=None, metavar="DIR",
                   help="this worker's own persistent perf-cache tier")
    p.set_defaults(func=cmd_worker)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
