"""Per-launch timing model for the Mali-T604.

``time_launch`` prices one ``clEnqueueNDRangeKernel`` of a compiled
kernel as a three-roofline model with explicit overheads:

* **arithmetic roofline** — issued vector micro-ops across
  4 cores × 2 arithmetic pipes, scaled by latency hiding (occupancy);
* **load/store roofline** — memory instructions through the per-core
  LS pipe (this is what vector loads relieve: one ``vload4`` is one LS
  issue where four scalar loads were four);
* **DRAM roofline** — bytes that miss the L2, at the pattern-dependent
  effective bandwidth of the shared DDR3L interface;

plus atomic serialization, barrier costs, Job-Manager work-group
scheduling, launch overhead, and an imbalance multiplier.  The largest
roofline is the bottleneck; a calibrated fraction of the other two
leaks past the overlap (threads cannot always cover both).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .. import perf
from ..compiler.pipeline import CompiledKernel
from ..ir.analysis import InstructionMix
from ..ir.dtypes import scalar_bits
from ..ir.nodes import AccessPattern, MemSpace
from ..memory.cache import CacheHierarchy
from ..memory.dram import DramModel
from ..workload import WorkloadTraits
from .config import MaliConfig
from .job_manager import Distribution, distribute
from .occupancy import Occupancy, derive_occupancy


@dataclass(frozen=True)
class GpuLaunchTiming:
    """Timing breakdown of one kernel launch on the GPU."""

    seconds: float
    arith_seconds: float
    ls_seconds: float
    dram_seconds: float
    atomic_seconds: float
    barrier_seconds: float
    schedule_seconds: float
    launch_overhead_seconds: float
    imbalance_factor: float
    occupancy: Occupancy
    distribution: Distribution
    dram_bytes: float
    bottleneck: str

    @property
    def alu_utilization(self) -> float:
        """Fraction of the run the arithmetic pipes are busy (power input)."""
        return min(self.arith_seconds / self.seconds, 1.0) if self.seconds > 0 else 0.0

    @property
    def ls_utilization(self) -> float:
        return min(self.ls_seconds / self.seconds, 1.0) if self.seconds > 0 else 0.0

    @property
    def dram_bandwidth(self) -> float:
        """Average achieved DRAM bandwidth over the launch, bytes/s."""
        return self.dram_bytes / self.seconds if self.seconds > 0 else 0.0


def _arith_cycles(mix: InstructionMix, config: MaliConfig, native_math: bool = False) -> float:
    cycles = 0.0
    for (op, base, width, accumulates), count in mix.arith.items():
        cycles += count * config.arith_issue_cost(
            op, base, width, scalar_bits(base), native_math=native_math
        )
    cycles += mix.loop_headers * config.loop_header_cost
    cycles += mix.branches * config.branch_cost
    cycles += mix.calls * config.call_cost
    return cycles


def _ls_cycles(mix: InstructionMix, config: MaliConfig) -> float:
    cycles = 0.0
    for (kind, space, pattern, base, width, sequential, aligned), count in mix.mem.items():
        if space == MemSpace.PRIVATE:
            continue  # register-resident; spills are emitted as GLOBAL
        cost = config.ls_issue_cost(width, scalar_bits(base))
        if width > 1 and not aligned:
            # sliding-window vloads at arbitrary element offsets cross
            # register boundaries: two LS issues each
            cost *= 2.0
        if space == MemSpace.CONSTANT:
            # __constant data comes through the constant cache / uniform
            # registers and barely touches the LS pipe; a broadcast from
            # plain __global memory still pays the full LS transaction
            cost *= config.uniform_load_cost_factor
        cycles += count * cost
    for (op, base, space), count in mix.atomics.items():
        if space == MemSpace.LOCAL:
            cycles += count * config.atomic_local_cycles
        else:
            cycles += count * config.atomic_cycles
    return cycles


def _access_width_efficiency(mix: InstructionMix, config: MaliConfig) -> float:
    """Bandwidth efficiency from the average global-access width.

    Midgard threads issue independent L2/DRAM transactions (no
    warp-level coalescing), so a stream of 32-bit scalar accesses
    sustains only ``scalar_access_dram_efficiency`` of the bandwidth a
    128-bit ``vload4`` stream reaches.  Interpolates linearly in the
    byte-weighted mean access width.
    """
    total_bytes = 0.0
    weighted_bits = 0.0
    for (kind, space, pattern, base, width, sequential, aligned), count in mix.mem.items():
        if space != MemSpace.GLOBAL:
            continue
        from ..ir.dtypes import DType

        nbytes = count * DType(base, width).bytes
        total_bytes += nbytes
        if sequential:
            # a per-thread streaming walk consumes whole cache lines
            # regardless of the instruction width
            weighted_bits += nbytes * config.lane_bits
        else:
            weighted_bits += nbytes * min(width * scalar_bits(base), config.lane_bits)
    if total_bytes <= 0.0:
        return 1.0
    mean_bits = weighted_bits / total_bytes
    # 32-bit accesses -> the scalar floor; 128-bit accesses -> full rate
    frac = min(max((mean_bits - 32.0) / (config.lane_bits - 32.0), 0.0), 1.0)
    low = config.scalar_access_dram_efficiency
    return low + (1.0 - low) * frac


def time_launch(
    compiled: CompiledKernel,
    n_items: int,
    local_size: int,
    traits: WorkloadTraits,
    config: MaliConfig,
    dram: DramModel,
    caches: CacheHierarchy,
    concurrent_agents: int = 1,
) -> GpuLaunchTiming:
    """Price one NDRange launch of ``n_items`` work-items.

    Pure in all arguments (the mutable model objects are keyed by their
    frozen configs), so results are memoized content-addressed: the
    autotuner prices each distinct (kernel, options, local size) point
    once per process — and, with a persistent tier attached, once per
    campaign.  One-shot callers go through a throwaway
    :class:`LaunchPricer`; sweeps that price many ``(n_items,
    local_size)`` candidates of the same kernel should hold one pricer
    and amortize its vectorized tables.
    """
    return LaunchPricer(
        compiled, traits, config, dram, caches, concurrent_agents=concurrent_agents
    ).price(n_items, local_size)


class _MixTables:
    """Vectorized per-entry (count, cost) columns of one kernel's mix.

    Built once per :class:`LaunchPricer`; every column preserves the
    source dict's iteration order so sequential summation over the
    elementwise products reproduces the scalar accumulation loops of
    ``_arith_cycles`` / ``_ls_cycles`` / ``_access_width_efficiency``
    bit for bit.
    """

    __slots__ = (
        "arith_counts",
        "arith_costs",
        "ls_counts",
        "ls_costs",
        "glb_counts",
        "glb_bytes",
        "glb_bits",
        "traffic",
        "dram_bytes",
        "transfer_s",
    )

    def __init__(
        self,
        compiled: CompiledKernel,
        traits: WorkloadTraits,
        config: MaliConfig,
        dram: DramModel,
        caches: CacheHierarchy,
        concurrent_agents: int,
    ) -> None:
        import numpy as np

        from ..ir.dtypes import DType

        mix = compiled.mix
        native_math = compiled.options.native_math
        arith_counts: list[float] = []
        arith_costs: list[float] = []
        for (op, base, width, accumulates), count in mix.arith.items():
            arith_counts.append(count)
            arith_costs.append(
                config.arith_issue_cost(
                    op, base, width, scalar_bits(base), native_math=native_math
                )
            )
        ls_counts: list[float] = []
        ls_costs: list[float] = []
        for (kind, space, pattern, base, width, sequential, aligned), count in mix.mem.items():
            if space == MemSpace.PRIVATE:
                continue
            cost = config.ls_issue_cost(width, scalar_bits(base))
            if width > 1 and not aligned:
                cost *= 2.0
            if space == MemSpace.CONSTANT:
                cost *= config.uniform_load_cost_factor
            ls_counts.append(count)
            ls_costs.append(cost)
        for (op, base, space), count in mix.atomics.items():
            ls_counts.append(count)
            ls_costs.append(
                config.atomic_local_cycles
                if space == MemSpace.LOCAL
                else config.atomic_cycles
            )
        glb_counts: list[float] = []
        glb_bytes: list[float] = []
        glb_bits: list[float] = []
        for (kind, space, pattern, base, width, sequential, aligned), count in mix.mem.items():
            if space != MemSpace.GLOBAL:
                continue
            glb_counts.append(count)
            glb_bytes.append(float(DType(base, width).bytes))
            glb_bits.append(
                float(config.lane_bits)
                if sequential
                else float(min(width * scalar_bits(base), config.lane_bits))
            )
        self.arith_counts = np.asarray(arith_counts, dtype=np.float64)
        self.arith_costs = np.asarray(arith_costs, dtype=np.float64)
        self.ls_counts = np.asarray(ls_counts, dtype=np.float64)
        self.ls_costs = np.asarray(ls_costs, dtype=np.float64)
        self.glb_counts = np.asarray(glb_counts, dtype=np.float64)
        self.glb_bytes = np.asarray(glb_bytes, dtype=np.float64)
        self.glb_bits = np.asarray(glb_bits, dtype=np.float64)
        self.traffic = caches.dram_traffic(list(traits.streams))
        self.dram_bytes = sum(self.traffic.values())
        self.transfer_s = (
            dram.transfer_seconds("gpu", self.traffic, concurrent_agents=concurrent_agents)
            if self.dram_bytes > 0
            else 0.0
        )


class LaunchPricer:
    """Batched launch pricing of one compiled kernel across candidates.

    The autotuner sweeps many ``(n_items, local_size)`` points of the
    same compiled kernel; the scalar path re-walks every
    :class:`~repro.ir.analysis.InstructionMix` dict and re-derives the
    DRAM traffic for each one.  A pricer hoists everything that does not
    depend on the candidate — the memo-key prefix, the per-entry
    (count, cost) columns, the cache-hierarchy traffic and its base
    transfer time — and prices each candidate with one vectorized pass
    plus a handful of scalar ops.  Cycle totals and the access-width
    efficiency depend on ``n_items`` only, so they are computed once per
    distinct item count (candidates sharing a rounded NDRange share the
    slice).

    Bitwise contract: elementwise numpy products over float64 columns
    are IEEE-identical to the scalar ``(count*n) * cost`` expressions,
    and every reduction is a sequential Python accumulation in source
    dict order — *not* ``np.sum``, whose pairwise summation reorders the
    additions — so ``price()`` returns exactly what the scalar reference
    ``_time_launch_uncached`` returns (asserted over the full grid in
    ``tests/unit/test_perf_persist.py``).  Both feed the same
    ``gpu_timing`` memo, so sweeps and one-shot calls share entries.
    """

    def __init__(
        self,
        compiled: CompiledKernel,
        traits: WorkloadTraits,
        config: MaliConfig,
        dram: DramModel,
        caches: CacheHierarchy,
        concurrent_agents: int = 1,
    ) -> None:
        self.compiled = compiled
        self.traits = traits
        self.config = config
        self.dram = dram
        self.caches = caches
        self.concurrent_agents = concurrent_agents
        # hoisted memo-key prefix: content_key of a tuple is the tuple of
        # element content_keys, so assembling per-candidate keys from the
        # fixed parts yields keys equal to time_launch's historical ones
        # (same memo slots, same disk digests)
        self._fixed = (
            perf.content_key(compiled),
            perf.content_key(traits),
            perf.content_key(config),
            perf.content_key(dram.config),
            perf.content_key(caches.l1.config),
            perf.content_key(caches.l2.config),
        )
        self._memo = perf.cache("gpu_timing")
        self._tables: _MixTables | None = None
        self._slices: dict[int, tuple[float, float, float]] = {}

    def key(self, n_items: int, local_size: int) -> tuple:
        """The ``gpu_timing`` memo key for one candidate."""
        f = self._fixed
        return (f[0], n_items, local_size, f[1], f[2], f[3], f[4], f[5], self.concurrent_agents)

    def price(self, n_items: int, local_size: int) -> GpuLaunchTiming:
        """Memoized candidate price (both tiers; computes on full miss)."""
        if not perf.is_enabled():
            return _time_launch_uncached(
                self.compiled,
                n_items,
                local_size,
                self.traits,
                self.config,
                self.dram,
                self.caches,
                self.concurrent_agents,
            )
        return self._memo.get_or_compute(
            self.key(n_items, local_size), lambda: self._compute(n_items, local_size)
        )

    # ------------------------------------------------------------------
    def _slice(self, n_items: int) -> tuple[float, float, float]:
        """(raw arith cycles, raw LS cycles, access efficiency) at one
        item count — the only mix-dependent quantities of a candidate."""
        found = self._slices.get(n_items)
        if found is not None:
            return found
        t = self._tables
        if t is None:
            t = self._tables = _MixTables(
                self.compiled,
                self.traits,
                self.config,
                self.dram,
                self.caches,
                self.concurrent_agents,
            )
        n = float(n_items)
        config = self.config
        mix = self.compiled.mix
        arith = 0.0
        for term in ((t.arith_counts * n) * t.arith_costs).tolist():
            arith += term
        arith += (mix.loop_headers * n) * config.loop_header_cost
        arith += (mix.branches * n) * config.branch_cost
        arith += (mix.calls * n) * config.call_cost
        ls = 0.0
        for term in ((t.ls_counts * n) * t.ls_costs).tolist():
            ls += term
        if t.glb_counts.size:
            nbytes = (t.glb_counts * n) * t.glb_bytes
            total_bytes = 0.0
            for b in nbytes.tolist():
                total_bytes += b
            weighted_bits = 0.0
            for w in (nbytes * t.glb_bits).tolist():
                weighted_bits += w
        else:
            total_bytes = 0.0
            weighted_bits = 0.0
        if total_bytes <= 0.0:
            access_eff = 1.0
        else:
            mean_bits = weighted_bits / total_bytes
            frac = min(max((mean_bits - 32.0) / (config.lane_bits - 32.0), 0.0), 1.0)
            low = config.scalar_access_dram_efficiency
            access_eff = low + (1.0 - low) * frac
        result = (arith, ls, access_eff)
        self._slices[n_items] = result
        return result

    def _compute(self, n_items: int, local_size: int) -> GpuLaunchTiming:
        """Uncached vectorized price (the scalar model, batched)."""
        if n_items < 1:
            raise ValueError(f"n_items must be >= 1, got {n_items}")
        arith_raw, ls_raw, access_eff = self._slice(n_items)
        t = self._tables
        config = self.config
        mix = self.compiled.mix
        n = float(n_items)

        occ = derive_occupancy(self.compiled.registers.threads_per_core, local_size)
        dist, imbalance = distribute(n_items, local_size, config, self.traits.imbalance_cv)

        clock = config.clock_hz
        n_cores = config.shader_cores

        arith_cycles = arith_raw / (n_cores * config.arith_pipes_per_core)
        ls_cycles = ls_raw / (n_cores * config.ls_pipes_per_core)
        arith_s = arith_cycles / clock / occ.hiding
        ls_s = ls_cycles / clock / occ.hiding

        dram_s = (
            t.transfer_s / occ.bandwidth_hiding / access_eff if t.dram_bytes > 0 else 0.0
        )

        atomic_s = (
            (mix.atomic_contention_weight * n) * config.atomic_cycles
            + (mix.atomic_contention_weight_local * n) * config.atomic_local_cycles / n_cores
        ) / clock

        barrier_instances = (mix.barriers * n) / max(local_size, 1)
        barrier_s = barrier_instances * config.barrier_cycles / clock / n_cores

        components = {"arith": arith_s, "ls": ls_s, "dram": dram_s, "atomic": atomic_s}
        bottleneck = max(components, key=components.get)
        peak = components[bottleneck]
        leak = config.overlap_leak * (sum(components.values()) - peak)
        parallel_s = (peak + leak) * imbalance + barrier_s

        total = parallel_s + dist.schedule_seconds + config.launch_overhead_s

        return GpuLaunchTiming(
            seconds=total,
            arith_seconds=arith_s,
            ls_seconds=ls_s,
            dram_seconds=dram_s,
            atomic_seconds=atomic_s,
            barrier_seconds=barrier_s,
            schedule_seconds=dist.schedule_seconds,
            launch_overhead_seconds=config.launch_overhead_s,
            imbalance_factor=imbalance,
            occupancy=occ,
            distribution=dist,
            dram_bytes=t.dram_bytes,
            bottleneck=bottleneck,
        )


def _time_launch_uncached(
    compiled: CompiledKernel,
    n_items: int,
    local_size: int,
    traits: WorkloadTraits,
    config: MaliConfig,
    dram: DramModel,
    caches: CacheHierarchy,
    concurrent_agents: int = 1,
) -> GpuLaunchTiming:
    if n_items < 1:
        raise ValueError(f"n_items must be >= 1, got {n_items}")
    mix = compiled.mix
    totals = mix.scaled(float(n_items))

    occ = derive_occupancy(compiled.registers.threads_per_core, local_size)
    dist, imbalance = distribute(n_items, local_size, config, traits.imbalance_cv)

    clock = config.clock_hz
    n_cores = config.shader_cores

    native_math = compiled.options.native_math
    arith_cycles = _arith_cycles(totals, config, native_math) / (
        n_cores * config.arith_pipes_per_core
    )
    ls_cycles = _ls_cycles(totals, config) / (n_cores * config.ls_pipes_per_core)
    arith_s = arith_cycles / clock / occ.hiding
    ls_s = ls_cycles / clock / occ.hiding

    traffic = caches.dram_traffic(list(traits.streams))
    dram_bytes = sum(traffic.values())
    access_eff = _access_width_efficiency(totals, config)
    dram_s = (
        dram.transfer_seconds("gpu", traffic, concurrent_agents=concurrent_agents)
        / occ.bandwidth_hiding
        / access_eff
        if dram_bytes > 0
        else 0.0
    )

    atomic_s = (
        totals.atomic_contention_weight * config.atomic_cycles
        # local atomics serialize only within one core: 1/n_cores weight
        + totals.atomic_contention_weight_local * config.atomic_local_cycles / n_cores
    ) / clock

    barrier_instances = totals.barriers / max(local_size, 1)
    barrier_s = barrier_instances * config.barrier_cycles / clock / n_cores

    components = {"arith": arith_s, "ls": ls_s, "dram": dram_s, "atomic": atomic_s}
    bottleneck = max(components, key=components.get)
    peak = components[bottleneck]
    leak = config.overlap_leak * (sum(components.values()) - peak)
    parallel_s = (peak + leak) * imbalance + barrier_s

    total = parallel_s + dist.schedule_seconds + config.launch_overhead_s

    return GpuLaunchTiming(
        seconds=total,
        arith_seconds=arith_s,
        ls_seconds=ls_s,
        dram_seconds=dram_s,
        atomic_seconds=atomic_s,
        barrier_seconds=barrier_s,
        schedule_seconds=dist.schedule_seconds,
        launch_overhead_seconds=config.launch_overhead_s,
        imbalance_factor=imbalance,
        occupancy=occ,
        distribution=dist,
        dram_bytes=dram_bytes,
        bottleneck=bottleneck,
    )


def roofline_floor_seconds(
    compiled: CompiledKernel,
    n_items: int,
    traits: WorkloadTraits,
    config: MaliConfig,
    dram: DramModel,
    caches: CacheHierarchy,
) -> float:
    """Optimistic lower bound on ``time_launch(...).seconds``.

    The best case for any launch of this compiled kernel: perfect latency
    hiding (occupancy = 1), full access-width efficiency, no imbalance,
    no overlap leak, and zero barrier/schedule/launch overheads — just
    ``max(arith, ls, dram)``.  Every penalty ``time_launch`` applies is a
    multiplier ≥ 1 or an additive term ≥ 0 on top of these components,
    so the bound holds for every local size; the pruned tuner strategy
    uses it to discard candidates that cannot beat the incumbent.
    """
    if n_items < 1:
        raise ValueError(f"n_items must be >= 1, got {n_items}")
    totals = compiled.mix.scaled(float(n_items))
    clock = config.clock_hz
    n_cores = config.shader_cores
    arith_s = (
        _arith_cycles(totals, config, compiled.options.native_math)
        / (n_cores * config.arith_pipes_per_core)
        / clock
    )
    ls_s = _ls_cycles(totals, config) / (n_cores * config.ls_pipes_per_core) / clock
    traffic = caches.dram_traffic(list(traits.streams))
    dram_s = dram.transfer_seconds("gpu", traffic) if sum(traffic.values()) > 0 else 0.0
    return max(arith_s, ls_s, dram_s)
