"""Per-launch timing model for the Mali-T604.

``time_launch`` prices one ``clEnqueueNDRangeKernel`` of a compiled
kernel as a three-roofline model with explicit overheads:

* **arithmetic roofline** — issued vector micro-ops across
  4 cores × 2 arithmetic pipes, scaled by latency hiding (occupancy);
* **load/store roofline** — memory instructions through the per-core
  LS pipe (this is what vector loads relieve: one ``vload4`` is one LS
  issue where four scalar loads were four);
* **DRAM roofline** — bytes that miss the L2, at the pattern-dependent
  effective bandwidth of the shared DDR3L interface;

plus atomic serialization, barrier costs, Job-Manager work-group
scheduling, launch overhead, and an imbalance multiplier.  The largest
roofline is the bottleneck; a calibrated fraction of the other two
leaks past the overlap (threads cannot always cover both).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields

from .. import perf
from ..compiler.pipeline import CompiledKernel
from ..compiler.regalloc import fits_register_file, threads_for_scale
from ..errors import CLOutOfResources
from ..ir.analysis import InstructionMix
from ..ir.dtypes import scalar_bits
from ..ir.nodes import AccessPattern, MemSpace
from ..memory.cache import CacheHierarchy
from ..memory.dram import DramModel
from ..workload import WorkloadTraits
from .config import MaliConfig
from .job_manager import Distribution, distribute
from .occupancy import (
    FULL_BANDWIDTH_THREADS,
    FULL_HIDING_THREADS,
    MIN_HIDING,
    Occupancy,
    derive_occupancy,
)


def _threads_per_core(compiled: CompiledKernel, config: MaliConfig) -> int:
    """Register-limited resident threads of a kernel on one config.

    The baseline register file returns exactly the compile-time
    ``threads_per_core`` (the historical bitwise path); a scaled file
    recomputes the tier from the kernel's effective register demand, or
    raises ``CL_OUT_OF_RESOURCES`` when the kernel no longer fits — the
    launch-time failure mode design-space sweeps use to mark candidates
    infeasible on leaner SoC variants.
    """
    scale = config.register_file_scale
    if scale == 1.0:
        return compiled.registers.threads_per_core
    report = compiled.registers
    if not fits_register_file(report, scale):
        raise CLOutOfResources(
            f"kernel needs {report.registers_128} 128-bit registers, "
            f"exceeding the {scale}x-scaled register file"
        )
    return threads_for_scale(report, scale)


@dataclass(frozen=True)
class GpuLaunchTiming:
    """Timing breakdown of one kernel launch on the GPU."""

    seconds: float
    arith_seconds: float
    ls_seconds: float
    dram_seconds: float
    atomic_seconds: float
    barrier_seconds: float
    schedule_seconds: float
    launch_overhead_seconds: float
    imbalance_factor: float
    occupancy: Occupancy
    distribution: Distribution
    dram_bytes: float
    bottleneck: str

    @property
    def alu_utilization(self) -> float:
        """Fraction of the run the arithmetic pipes are busy (power input)."""
        return min(self.arith_seconds / self.seconds, 1.0) if self.seconds > 0 else 0.0

    @property
    def ls_utilization(self) -> float:
        return min(self.ls_seconds / self.seconds, 1.0) if self.seconds > 0 else 0.0

    @property
    def dram_bandwidth(self) -> float:
        """Average achieved DRAM bandwidth over the launch, bytes/s."""
        return self.dram_bytes / self.seconds if self.seconds > 0 else 0.0

    @property
    def clock_sensitivity(self) -> float:
        """Fraction of the launch that scales with the shader clock.

        The DVFS layer's frequency-response fit ``t(f) = a/f + b``
        splits a launch into a clock-scaled part and a clock-invariant
        floor; this is the launch's own estimate of the scaled share,
        from the two clock-independent terms the model knows about: the
        DRAM roofline (when it is the binding bottleneck — its seconds
        ride the memory clock, not the shader clock) and the constant
        launch overhead.  Compute-bound launches approach 1.0;
        streaming, bandwidth-bound launches fall toward 0.0.
        """
        if self.seconds <= 0:
            return 0.0
        invariant = self.launch_overhead_seconds
        if self.bottleneck == "dram":
            invariant += self.dram_seconds * self.imbalance_factor
        return min(max(1.0 - invariant / self.seconds, 0.0), 1.0)


def _arith_cycles(mix: InstructionMix, config: MaliConfig, native_math: bool = False) -> float:
    cycles = 0.0
    for (op, base, width, accumulates), count in mix.arith.items():
        cycles += count * config.arith_issue_cost(
            op, base=base, width=width, scalar_bits=scalar_bits(base), native_math=native_math
        )
    cycles += mix.loop_headers * config.loop_header_cost
    cycles += mix.branches * config.branch_cost
    cycles += mix.calls * config.call_cost
    return cycles


def _ls_cycles(mix: InstructionMix, config: MaliConfig) -> float:
    cycles = 0.0
    for (kind, space, pattern, base, width, sequential, aligned), count in mix.mem.items():
        if space == MemSpace.PRIVATE:
            continue  # register-resident; spills are emitted as GLOBAL
        cost = config.ls_issue_cost(width, scalar_bits=scalar_bits(base))
        if width > 1 and not aligned:
            # sliding-window vloads at arbitrary element offsets cross
            # register boundaries: two LS issues each
            cost *= 2.0
        if space == MemSpace.CONSTANT:
            # __constant data comes through the constant cache / uniform
            # registers and barely touches the LS pipe; a broadcast from
            # plain __global memory still pays the full LS transaction
            cost *= config.uniform_load_cost_factor
        cycles += count * cost
    for (op, base, space), count in mix.atomics.items():
        if space == MemSpace.LOCAL:
            cycles += count * config.atomic_local_cycles
        else:
            cycles += count * config.atomic_cycles
    return cycles


def _access_width_efficiency(mix: InstructionMix, config: MaliConfig) -> float:
    """Bandwidth efficiency from the average global-access width.

    Midgard threads issue independent L2/DRAM transactions (no
    warp-level coalescing), so a stream of 32-bit scalar accesses
    sustains only ``scalar_access_dram_efficiency`` of the bandwidth a
    128-bit ``vload4`` stream reaches.  Interpolates linearly in the
    byte-weighted mean access width.
    """
    total_bytes = 0.0
    weighted_bits = 0.0
    for (kind, space, pattern, base, width, sequential, aligned), count in mix.mem.items():
        if space != MemSpace.GLOBAL:
            continue
        from ..ir.dtypes import DType

        nbytes = count * DType(base, width).bytes
        total_bytes += nbytes
        if sequential:
            # a per-thread streaming walk consumes whole cache lines
            # regardless of the instruction width
            weighted_bits += nbytes * config.lane_bits
        else:
            weighted_bits += nbytes * min(width * scalar_bits(base), config.lane_bits)
    if total_bytes <= 0.0:
        return 1.0
    mean_bits = weighted_bits / total_bytes
    # 32-bit accesses -> the scalar floor; 128-bit accesses -> full rate
    frac = min(max((mean_bits - 32.0) / (config.lane_bits - 32.0), 0.0), 1.0)
    low = config.scalar_access_dram_efficiency
    return low + (1.0 - low) * frac


def time_launch(
    compiled: CompiledKernel,
    n_items: int,
    local_size: int,
    traits: WorkloadTraits,
    config: MaliConfig,
    dram: DramModel,
    caches: CacheHierarchy,
    concurrent_agents: int = 1,
) -> GpuLaunchTiming:
    """Price one NDRange launch of ``n_items`` work-items.

    Pure in all arguments (the mutable model objects are keyed by their
    frozen configs), so results are memoized content-addressed: the
    autotuner prices each distinct (kernel, options, local size) point
    once per process — and, with a persistent tier attached, once per
    campaign.  One-shot callers go through a throwaway
    :class:`LaunchPricer`; sweeps that price many ``(n_items,
    local_size)`` candidates of the same kernel should hold one pricer
    and amortize its vectorized tables.
    """
    return LaunchPricer(
        compiled, traits, config, dram, caches, concurrent_agents=concurrent_agents
    ).price(n_items, local_size)


class _HashedKey:
    """A memo-key part that caches its (expensive) structural hash.

    The ``gpu_timing`` memo keys embed deeply nested frozen dataclasses
    (compiled kernel, traits, configs); hashing them from scratch on
    every table lookup dominates the batched cold path.  This wrapper is
    transparent in equality and ``repr`` — keys assembled from wrapped
    parts occupy the same memo slots and produce the same persistent
    ``sha256(repr(key))`` digests as the historical raw tuples — but the
    hash is computed once, at pricer construction.
    """

    __slots__ = ("value", "_hash")

    def __init__(self, value) -> None:
        self.value = value
        self._hash = hash(value)

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other) -> bool:
        if isinstance(other, _HashedKey):
            return self.value == other.value
        return self.value == other

    def __repr__(self) -> str:
        return repr(self.value)

    def __reduce__(self):
        # str/bytes hashes are randomized per process: rebuild from the
        # value so an unpickled key part hashes correctly where it lands
        return (_HashedKey, (self.value,))


def _hashed_key_part(obj) -> _HashedKey:
    """``_HashedKey(content_key(obj))`` with a single structure walk.

    ``content_key`` returns hashable values untouched (after probing
    ``hash``), so wrapping the raw object directly skips that probe;
    the ``TypeError`` fallback covers unhashable values.
    """
    try:
        return _HashedKey(obj)
    except TypeError:
        return _HashedKey(perf.content_key(obj))


def _attached_key_part(obj) -> _HashedKey:
    """:func:`_hashed_key_part`, cached on the keyed object itself.

    Compiled kernels and traits are immutable once built and typically
    priced many times per campaign (every tuner candidate, every grid
    row); their structural content key is a pure derived constant, so it
    is computed once and attached to the instance.  Per-process only —
    :class:`CompiledKernel` strips derived attributes on pickle and
    :class:`_HashedKey` re-hashes on unpickle, so hash randomization
    never leaks a stale hash across worker processes.
    """
    part = obj.__dict__.get("_timing_key_part")
    if part is None:
        part = _hashed_key_part(obj)
        object.__setattr__(obj, "_timing_key_part", part)
    return part


#: distinct item counts below which the 2-D bulk slice pass costs more
#: in ufunc dispatch than it saves (both paths are bitwise-identical)
_BULK_THRESHOLD = 32


class _MixColumns:
    """Vectorized per-entry (count, cost) columns of one kernel's mix.

    Every column preserves the source dict's iteration order so
    sequential summation over the elementwise products reproduces the
    scalar accumulation loops of ``_arith_cycles`` / ``_ls_cycles`` /
    ``_access_width_efficiency`` bit for bit.  Columns are plain Python
    lists — small mixes price fastest through scalar loops — with NumPy
    views materialized on demand for the 2-D bulk pass (:meth:`arrays`).

    A pure derived constant of ``(compiled, config)``: built once and
    cached on the compiled kernel (:func:`_columns_for`), shared by
    every pricer of that kernel — batched grids and one-shot
    ``time_launch`` calls alike.
    """

    __slots__ = (
        "arith_counts",
        "arith_costs",
        "ls_counts",
        "ls_costs",
        "glb_counts",
        "glb_bytes",
        "glb_bits",
        "_arrays",
    )

    def __init__(self, compiled: CompiledKernel, config: MaliConfig) -> None:
        from ..ir.dtypes import DType

        mix = compiled.mix
        native_math = compiled.options.native_math
        arith_counts: list[float] = []
        arith_costs: list[float] = []
        for (op, base, width, accumulates), count in mix.arith.items():
            arith_counts.append(count)
            arith_costs.append(
                config.arith_issue_cost(
                    op,
                    base=base,
                    width=width,
                    scalar_bits=scalar_bits(base),
                    native_math=native_math,
                )
            )
        ls_counts: list[float] = []
        ls_costs: list[float] = []
        for (kind, space, pattern, base, width, sequential, aligned), count in mix.mem.items():
            if space == MemSpace.PRIVATE:
                continue
            cost = config.ls_issue_cost(width, scalar_bits=scalar_bits(base))
            if width > 1 and not aligned:
                cost *= 2.0
            if space == MemSpace.CONSTANT:
                cost *= config.uniform_load_cost_factor
            ls_counts.append(count)
            ls_costs.append(cost)
        for (op, base, space), count in mix.atomics.items():
            ls_counts.append(count)
            ls_costs.append(
                config.atomic_local_cycles
                if space == MemSpace.LOCAL
                else config.atomic_cycles
            )
        glb_counts: list[float] = []
        glb_bytes: list[float] = []
        glb_bits: list[float] = []
        for (kind, space, pattern, base, width, sequential, aligned), count in mix.mem.items():
            if space != MemSpace.GLOBAL:
                continue
            glb_counts.append(count)
            glb_bytes.append(float(DType(base, width).bytes))
            glb_bits.append(
                float(config.lane_bits)
                if sequential
                else float(min(width * scalar_bits(base), config.lane_bits))
            )
        self.arith_counts = arith_counts
        self.arith_costs = arith_costs
        self.ls_counts = ls_counts
        self.ls_costs = ls_costs
        self.glb_counts = glb_counts
        self.glb_bytes = glb_bytes
        self.glb_bits = glb_bits
        self._arrays: tuple | None = None

    def arrays(self) -> tuple:
        """float64 column views for the 2-D bulk pass, built on demand."""
        if self._arrays is None:
            import numpy as np

            self._arrays = tuple(
                np.asarray(col, dtype=np.float64)
                for col in (
                    self.arith_counts,
                    self.arith_costs,
                    self.ls_counts,
                    self.ls_costs,
                    self.glb_counts,
                    self.glb_bytes,
                    self.glb_bits,
                )
            )
        return self._arrays


def _columns_for(compiled: CompiledKernel, config: MaliConfig) -> _MixColumns:
    """The shared :class:`_MixColumns` of one (kernel, config) pair.

    Cached in the compiled kernel's instance dict, keyed by config
    identity (the identity check pins the config object, so a replaced
    calibration never aliases a stale entry).  Stripped on pickle along
    with the key token — see :meth:`CompiledKernel.__getstate__`.
    """
    cache = compiled.__dict__.get("_timing_columns")
    if cache is None:
        cache = {}
        object.__setattr__(compiled, "_timing_columns", cache)
    entry = cache.get(id(config))
    if entry is None or entry[0] is not config:
        entry = cache[id(config)] = (config, _MixColumns(compiled, config))
    return entry[1]


#: (l1 config, l2 config, dram config) -> {(streams, agents): (traffic
#: items, dram bytes, transfer seconds)}.  DRAM traffic and its base
#: transfer time are pure functions of the frozen configs and the
#: traits' stream tuple; grids repeat the same few stream mixes across
#: dozens of kernel groups, so the filtered traffic is derived once per
#: distinct mix per process.
_TRAFFIC_TABLES: dict[tuple, dict] = {}


def _traffic_tables(dram: DramModel, caches: CacheHierarchy) -> dict:
    key = (caches.l1.config, caches.l2.config, dram.config)
    found = _TRAFFIC_TABLES.get(key)
    if found is None:
        found = _TRAFFIC_TABLES[key] = {}
    return found


class _MixTables:
    """Candidate-independent pricing state of one kernel instance.

    The config-derived columns (shared per compiled kernel) plus the
    traits-derived DRAM traffic and base transfer time (shared per
    stream mix).  Built once per :class:`LaunchPricer`.
    """

    __slots__ = ("cols", "traffic", "dram_bytes", "transfer_s")

    def __init__(
        self,
        compiled: CompiledKernel,
        traits: WorkloadTraits,
        config: MaliConfig,
        dram: DramModel,
        caches: CacheHierarchy,
        concurrent_agents: int,
        traffic_tables: dict | None = None,
    ) -> None:
        self.cols = _columns_for(compiled, config)
        tables = traffic_tables if traffic_tables is not None else _traffic_tables(dram, caches)
        tkey = (traits.streams, concurrent_agents)
        entry = tables.get(tkey)
        if entry is None:
            traffic = caches.dram_traffic(list(traits.streams))
            dram_bytes = sum(traffic.values())
            transfer_s = (
                dram.transfer_seconds(
                    "gpu", bytes_by_pattern=traffic, concurrent_agents=concurrent_agents
                )
                if dram_bytes > 0
                else 0.0
            )
            entry = tables[tkey] = (tuple(traffic.items()), dram_bytes, transfer_s)
        items, self.dram_bytes, self.transfer_s = entry
        self.traffic = dict(items)


class LaunchPricer:
    """Batched launch pricing of one compiled kernel across candidates.

    The autotuner sweeps many ``(n_items, local_size)`` points of the
    same compiled kernel; the scalar path re-walks every
    :class:`~repro.ir.analysis.InstructionMix` dict and re-derives the
    DRAM traffic for each one.  A pricer hoists everything that does not
    depend on the candidate — the memo-key prefix, the per-entry
    (count, cost) columns, the cache-hierarchy traffic and its base
    transfer time — and prices each candidate with one vectorized pass
    plus a handful of scalar ops.  Cycle totals and the access-width
    efficiency depend on ``n_items`` only, so they are computed once per
    distinct item count (candidates sharing a rounded NDRange share the
    slice).

    Bitwise contract: elementwise numpy products over float64 columns
    are IEEE-identical to the scalar ``(count*n) * cost`` expressions,
    and every reduction is a sequential Python accumulation in source
    dict order — *not* ``np.sum``, whose pairwise summation reorders the
    additions — so ``price()`` returns exactly what the scalar reference
    ``_time_launch_uncached`` returns (asserted over the full grid in
    ``tests/unit/test_perf_persist.py``).  Both feed the same
    ``gpu_timing`` memo, so sweeps and one-shot calls share entries.
    """

    def __init__(
        self,
        compiled: CompiledKernel,
        traits: WorkloadTraits,
        config: MaliConfig,
        dram: DramModel,
        caches: CacheHierarchy,
        concurrent_agents: int = 1,
        fixed: tuple | None = None,
        traffic_tables: dict | None = None,
        occ_cache: dict | None = None,
    ) -> None:
        self.compiled = compiled
        self.traits = traits
        self.config = config
        self.dram = dram
        self.caches = caches
        self.concurrent_agents = concurrent_agents
        self._traffic_tables = traffic_tables
        self._tpc = _threads_per_core(compiled, config)
        # hoisted memo-key prefix: content_key of a tuple is the tuple of
        # element content_keys, so assembling per-candidate keys from the
        # fixed parts yields keys equal to time_launch's historical ones
        # (same memo slots, same disk digests).  ``fixed`` lets
        # :class:`GpuPricingModel` inject hash-cached parts, sharing the
        # platform-level ones across every kernel group of a grid;
        # wrapped and raw parts are equal and hash alike, so both forms
        # address the same memo slots.
        if fixed is None:
            fixed = (
                perf.content_key(compiled),
                perf.content_key(traits),
                perf.content_key(config),
                perf.content_key(dram.config),
                perf.content_key(caches.l1.config),
                perf.content_key(caches.l2.config),
            )
        self._fixed = fixed
        self._memo = perf.cache("gpu_timing")
        self._tables: _MixTables | None = None
        self._slices: dict[int, tuple[float, float, float]] = {}
        # (threads_per_core, local_size) -> (occupancy, hiding,
        # bandwidth_hiding); shareable across the pricers of a grid — a
        # few register tiers times a few local sizes cover every cell
        self._occs: dict[tuple[int, int], tuple[Occupancy, float, float]] = (
            occ_cache if occ_cache is not None else {}
        )

    def key(self, n_items: int, local_size: int) -> tuple:
        """The ``gpu_timing`` memo key for one candidate."""
        f = self._fixed
        return (f[0], n_items, local_size, f[1], f[2], f[3], f[4], f[5], self.concurrent_agents)

    def price(self, n_items: int, local_size: int) -> GpuLaunchTiming:
        """Memoized candidate price (both tiers; computes on full miss)."""
        if not perf.is_enabled():
            return _time_launch_uncached(
                self.compiled,
                n_items,
                local_size,
                self.traits,
                self.config,
                self.dram,
                self.caches,
                self.concurrent_agents,
            )
        return self._memo.get_or_compute(
            self.key(n_items, local_size), lambda: self._compute(n_items, local_size)
        )

    def price_many(
        self, candidates: list[tuple[int, int]]
    ) -> tuple[GpuLaunchTiming, ...]:
        """Price many ``(n_items, local_size)`` candidates of this kernel.

        The mix-dependent slices of every distinct item count are computed
        in one 2-D vectorized pass (:meth:`warm_slices`); each candidate
        then pays only the scalar epilogue (occupancy, distribution,
        roofline max).  Results are bitwise-identical to ``price()`` one
        at a time and flow through the same ``gpu_timing`` memo slots.
        """
        candidates = list(candidates)
        self.warm_slices([n for n, _ in candidates])
        return tuple(self.price(n, local) for n, local in candidates)

    # ------------------------------------------------------------------
    def _ensure_tables(self) -> _MixTables:
        t = self._tables
        if t is None:
            t = self._tables = _MixTables(
                self.compiled,
                self.traits,
                self.config,
                self.dram,
                self.caches,
                self.concurrent_agents,
                self._traffic_tables,
            )
        return t

    def _slice(self, n_items: int) -> tuple[float, float, float]:
        """(raw arith cycles, raw LS cycles, access efficiency) at one
        item count — the only mix-dependent quantities of a candidate.

        Pure scalar Python over the hoisted columns: each ``(count*n) *
        cost`` product and each sequential addition is the same IEEE-754
        double operation the NumPy bulk pass performs lane-wise, so the
        cached slices are bitwise-identical either way — and for one
        item count the scalar loop beats the ufunc dispatch overhead.
        """
        found = self._slices.get(n_items)
        if found is not None:
            return found
        cols = self._ensure_tables().cols
        n = float(n_items)
        config = self.config
        mix = self.compiled.mix
        arith = 0.0
        for count, cost in zip(cols.arith_counts, cols.arith_costs):
            arith += (count * n) * cost
        arith += (mix.loop_headers * n) * config.loop_header_cost
        arith += (mix.branches * n) * config.branch_cost
        arith += (mix.calls * n) * config.call_cost
        ls = 0.0
        for count, cost in zip(cols.ls_counts, cols.ls_costs):
            ls += (count * n) * cost
        total_bytes = 0.0
        weighted_bits = 0.0
        for count, nbytes, bits in zip(cols.glb_counts, cols.glb_bytes, cols.glb_bits):
            b = (count * n) * nbytes
            total_bytes += b
            weighted_bits += b * bits
        if total_bytes <= 0.0:
            access_eff = 1.0
        else:
            mean_bits = weighted_bits / total_bytes
            frac = min(max((mean_bits - 32.0) / (config.lane_bits - 32.0), 0.0), 1.0)
            low = config.scalar_access_dram_efficiency
            access_eff = low + (1.0 - low) * frac
        result = (arith, ls, access_eff)
        self._slices[n_items] = result
        return result

    def warm_slices(self, n_values) -> None:
        """Bulk-fill :meth:`_slice` for many item counts in one 2-D pass.

        Instead of one 1-D product per item count, the whole grid of
        (entry, item count) terms is materialized as a 2-D outer product
        and reduced along the entry axis by sequential row accumulation —
        each lane sees its additions in the exact order the scalar loop
        performs them, so the cached slices are bitwise-identical to what
        ``_slice`` would have produced one ``n`` at a time.

        Below ``_BULK_THRESHOLD`` distinct item counts the ufunc
        dispatch overhead of the 2-D pass exceeds its win, so the slices
        fall through to the (equally bitwise) scalar :meth:`_slice`.
        """
        todo = sorted({int(n) for n in n_values} - self._slices.keys())
        if not todo:
            return
        if len(todo) < _BULK_THRESHOLD:
            for n_items in todo:
                self._slice(n_items)
            return
        import numpy as np

        (
            arith_counts,
            arith_costs,
            ls_counts,
            ls_costs,
            glb_counts,
            glb_bytes,
            glb_bits,
        ) = self._ensure_tables().cols.arrays()
        config = self.config
        mix = self.compiled.mix
        ns = np.asarray([float(n) for n in todo], dtype=np.float64)
        width = len(todo)

        arith = np.zeros(width)
        if arith_counts.size:
            for row in (arith_counts[:, None] * ns[None, :]) * arith_costs[:, None]:
                arith += row
        arith += (mix.loop_headers * ns) * config.loop_header_cost
        arith += (mix.branches * ns) * config.branch_cost
        arith += (mix.calls * ns) * config.call_cost

        ls = np.zeros(width)
        if ls_counts.size:
            for row in (ls_counts[:, None] * ns[None, :]) * ls_costs[:, None]:
                ls += row

        if glb_counts.size:
            nbytes = (glb_counts[:, None] * ns[None, :]) * glb_bytes[:, None]
            total_bytes = np.zeros(width)
            for row in nbytes:
                total_bytes += row
            weighted_bits = np.zeros(width)
            for row in nbytes * glb_bits[:, None]:
                weighted_bits += row
            with np.errstate(divide="ignore", invalid="ignore"):
                mean_bits = weighted_bits / total_bytes
                frac = np.minimum(
                    np.maximum((mean_bits - 32.0) / (config.lane_bits - 32.0), 0.0), 1.0
                )
                low = config.scalar_access_dram_efficiency
                access_eff = np.where(total_bytes <= 0.0, 1.0, low + (1.0 - low) * frac)
        else:
            access_eff = np.ones(width)

        for j, n_items in enumerate(todo):
            self._slices[n_items] = (float(arith[j]), float(ls[j]), float(access_eff[j]))

    def _compute(self, n_items: int, local_size: int) -> GpuLaunchTiming:
        """Uncached vectorized price (the scalar model, batched)."""
        if n_items < 1:
            raise ValueError(f"n_items must be >= 1, got {n_items}")
        arith_raw, ls_raw, access_eff = self._slice(n_items)
        t = self._ensure_tables()
        config = self.config
        mix = self.compiled.mix
        n = float(n_items)

        # occupancy depends on (register tier, local size) alone; the
        # hiding factors are sqrt-computing properties, so the cache
        # holds the derived floats next to the frozen Occupancy
        entry = self._occs.get((self._tpc, local_size))
        if entry is None:
            occ = derive_occupancy(self._tpc, local_size)
            entry = self._occs[(self._tpc, local_size)] = (
                occ,
                occ.hiding,
                occ.bandwidth_hiding,
            )
        occ, hiding, bandwidth_hiding = entry
        dist, imbalance = distribute(n_items, local_size, config, self.traits.imbalance_cv)

        clock = config.clock_hz
        n_cores = config.shader_cores

        arith_cycles = arith_raw / (n_cores * config.arith_pipes_per_core)
        ls_cycles = ls_raw / (n_cores * config.ls_pipes_per_core)
        arith_s = arith_cycles / clock / hiding
        ls_s = ls_cycles / clock / hiding

        dram_s = (
            t.transfer_s / bandwidth_hiding / access_eff if t.dram_bytes > 0 else 0.0
        )

        atomic_s = (
            (mix.atomic_contention_weight * n) * config.atomic_cycles
            + (mix.atomic_contention_weight_local * n) * config.atomic_local_cycles / n_cores
        ) / clock

        barrier_instances = (mix.barriers * n) / max(local_size, 1)
        barrier_s = barrier_instances * config.barrier_cycles / clock / n_cores

        # unrolled twin of the reference's component-dict max: first
        # maximum wins on ties (dict order arith, ls, dram, atomic) and
        # the leak sums the components in that same insertion order
        peak, bottleneck = arith_s, "arith"
        if ls_s > peak:
            peak, bottleneck = ls_s, "ls"
        if dram_s > peak:
            peak, bottleneck = dram_s, "dram"
        if atomic_s > peak:
            peak, bottleneck = atomic_s, "atomic"
        leak = config.overlap_leak * ((((arith_s + ls_s) + dram_s) + atomic_s) - peak)
        parallel_s = (peak + leak) * imbalance + barrier_s

        total = parallel_s + dist.schedule_seconds + config.launch_overhead_s

        # a grid builds hundreds of these; the frozen-dataclass __init__
        # goes through object.__setattr__ per field, so fill the instance
        # dict directly (same fields, same values, same pickle/eq/repr)
        timing = object.__new__(GpuLaunchTiming)
        timing.__dict__.update(
            seconds=total,
            arith_seconds=arith_s,
            ls_seconds=ls_s,
            dram_seconds=dram_s,
            atomic_seconds=atomic_s,
            barrier_seconds=barrier_s,
            schedule_seconds=dist.schedule_seconds,
            launch_overhead_seconds=config.launch_overhead_s,
            imbalance_factor=imbalance,
            occupancy=occ,
            distribution=dist,
            dram_bytes=t.dram_bytes,
            bottleneck=bottleneck,
        )
        return timing


def _time_launch_uncached(
    compiled: CompiledKernel,
    n_items: int,
    local_size: int,
    traits: WorkloadTraits,
    config: MaliConfig,
    dram: DramModel,
    caches: CacheHierarchy,
    concurrent_agents: int = 1,
) -> GpuLaunchTiming:
    if n_items < 1:
        raise ValueError(f"n_items must be >= 1, got {n_items}")
    mix = compiled.mix
    totals = mix.scaled(float(n_items))

    occ = derive_occupancy(_threads_per_core(compiled, config), local_size)
    dist, imbalance = distribute(n_items, local_size, config, traits.imbalance_cv)

    clock = config.clock_hz
    n_cores = config.shader_cores

    native_math = compiled.options.native_math
    arith_cycles = _arith_cycles(totals, config, native_math) / (
        n_cores * config.arith_pipes_per_core
    )
    ls_cycles = _ls_cycles(totals, config) / (n_cores * config.ls_pipes_per_core)
    arith_s = arith_cycles / clock / occ.hiding
    ls_s = ls_cycles / clock / occ.hiding

    traffic = caches.dram_traffic(list(traits.streams))
    dram_bytes = sum(traffic.values())
    access_eff = _access_width_efficiency(totals, config)
    dram_s = (
        dram.transfer_seconds(
            "gpu", bytes_by_pattern=traffic, concurrent_agents=concurrent_agents
        )
        / occ.bandwidth_hiding
        / access_eff
        if dram_bytes > 0
        else 0.0
    )

    atomic_s = (
        totals.atomic_contention_weight * config.atomic_cycles
        # local atomics serialize only within one core: 1/n_cores weight
        + totals.atomic_contention_weight_local * config.atomic_local_cycles / n_cores
    ) / clock

    barrier_instances = totals.barriers / max(local_size, 1)
    barrier_s = barrier_instances * config.barrier_cycles / clock / n_cores

    components = {"arith": arith_s, "ls": ls_s, "dram": dram_s, "atomic": atomic_s}
    bottleneck = max(components, key=components.get)
    peak = components[bottleneck]
    leak = config.overlap_leak * (sum(components.values()) - peak)
    parallel_s = (peak + leak) * imbalance + barrier_s

    total = parallel_s + dist.schedule_seconds + config.launch_overhead_s

    return GpuLaunchTiming(
        seconds=total,
        arith_seconds=arith_s,
        ls_seconds=ls_s,
        dram_seconds=dram_s,
        atomic_seconds=atomic_s,
        barrier_seconds=barrier_s,
        schedule_seconds=dist.schedule_seconds,
        launch_overhead_seconds=config.launch_overhead_s,
        imbalance_factor=imbalance,
        occupancy=occ,
        distribution=dist,
        dram_bytes=dram_bytes,
        bottleneck=bottleneck,
    )


def roofline_floor_seconds(
    compiled: CompiledKernel,
    n_items: int,
    traits: WorkloadTraits,
    config: MaliConfig,
    dram: DramModel,
    caches: CacheHierarchy,
) -> float:
    """Optimistic lower bound on ``time_launch(...).seconds``.

    The best case for any launch of this compiled kernel: perfect latency
    hiding (occupancy = 1), full access-width efficiency, no imbalance,
    no overlap leak, and zero barrier/schedule/launch overheads — just
    ``max(arith, ls, dram)``.  Every penalty ``time_launch`` applies is a
    multiplier ≥ 1 or an additive term ≥ 0 on top of these components,
    so the bound holds for every local size; the pruned tuner strategy
    uses it to discard candidates that cannot beat the incumbent.
    """
    if n_items < 1:
        raise ValueError(f"n_items must be >= 1, got {n_items}")
    totals = compiled.mix.scaled(float(n_items))
    clock = config.clock_hz
    n_cores = config.shader_cores
    arith_s = (
        _arith_cycles(totals, config, compiled.options.native_math)
        / (n_cores * config.arith_pipes_per_core)
        / clock
    )
    ls_s = _ls_cycles(totals, config) / (n_cores * config.ls_pipes_per_core) / clock
    traffic = caches.dram_traffic(list(traits.streams))
    dram_s = (
        dram.transfer_seconds("gpu", bytes_by_pattern=traffic)
        if sum(traffic.values()) > 0
        else 0.0
    )
    return max(arith_s, ls_s, dram_s)


class GpuPricingModel:
    """Batched :class:`~repro.pricing.PricingModel` over GPU launch cells.

    Groups cells by (compiled kernel, traits, concurrent agents), holds
    one :class:`LaunchPricer` per group, and bulk-computes the
    mix-dependent slices of every distinct item count before pricing the
    candidates.  Pricers persist across ``price`` calls so the tuner and
    the campaign cold path share vectorized tables and memo slots.
    """

    def __init__(self, config: MaliConfig, dram: DramModel, caches: CacheHierarchy):
        self.config = config
        self.dram = dram
        self.caches = caches
        self._pricers: dict[tuple[int, int, int], LaunchPricer] = {}
        # platform-level memo-key parts, hashed once for the whole grid
        self._platform_fixed: tuple | None = None
        # shared per-stream-mix traffic tables, resolved once per facade
        self._traffic = _traffic_tables(dram, caches)
        # occupancy entries shared across every pricer of this facade
        self._occ_entries: dict[tuple[int, int], tuple[Occupancy, float, float]] = {}
        # traits interning: cells built from distinct-but-equal traits
        # objects (one per grid row) collapse onto one canonical instance
        # so they share a pricer, its tables, and its warmed slices
        self._traits_by_id: dict[int, WorkloadTraits] = {}
        self._traits_canon: dict[WorkloadTraits, WorkloadTraits] = {}

    def _canon_traits(self, traits: WorkloadTraits) -> WorkloadTraits:
        found = self._traits_by_id.get(id(traits))
        if found is None:
            found = self._traits_canon.setdefault(traits, traits)
            self._traits_by_id[id(traits)] = found
        return found

    def _fixed_for(
        self, compiled: CompiledKernel, traits: WorkloadTraits
    ) -> tuple:
        if self._platform_fixed is None:
            self._platform_fixed = (
                _hashed_key_part(self.config),
                _hashed_key_part(self.dram.config),
                _hashed_key_part(self.caches.l1.config),
                _hashed_key_part(self.caches.l2.config),
            )
        return (
            _attached_key_part(compiled),
            _attached_key_part(traits),
        ) + self._platform_fixed

    def pricer(
        self,
        compiled: CompiledKernel,
        traits: WorkloadTraits,
        concurrent_agents: int = 1,
    ) -> LaunchPricer:
        """The shared :class:`LaunchPricer` for one kernel instance."""
        traits = self._canon_traits(traits)
        gk = (id(compiled), id(traits), concurrent_agents)
        found = self._pricers.get(gk)
        if found is None:
            found = self._pricers[gk] = LaunchPricer(
                compiled,
                traits,
                self.config,
                self.dram,
                self.caches,
                concurrent_agents=concurrent_agents,
                fixed=self._fixed_for(compiled, traits),
                traffic_tables=self._traffic,
                occ_cache=self._occ_entries,
            )
        return found

    def price(self, cells) -> tuple[GpuLaunchTiming, ...]:
        """Timings for each :class:`~repro.pricing.GpuLaunchCell`."""
        cells = tuple(cells)
        grouped: dict[tuple[int, int, int], tuple[LaunchPricer, list[int]]] = {}
        for i, cell in enumerate(cells):
            pricer = self.pricer(cell.compiled, cell.traits, cell.concurrent_agents)
            gk = (id(cell.compiled), id(pricer.traits), cell.concurrent_agents)
            grouped.setdefault(gk, (pricer, []))[1].append(i)
        out: list[GpuLaunchTiming | None] = [None] * len(cells)
        for pricer, idxs in grouped.values():
            pricer.warm_slices([cells[i].n_items for i in idxs])
            for i in idxs:
                out[i] = pricer.price(cells[i].n_items, cells[i].local_size)
        return tuple(out)  # type: ignore[arg-type]

    def price_one(self, cell) -> GpuLaunchTiming:
        """Single-cell convenience (same memo slots as the batch path)."""
        return self.pricer(cell.compiled, cell.traits, cell.concurrent_agents).price(
            cell.n_items, cell.local_size
        )


# ---------------------------------------------------------------------------
# Config-axis stacking (design-space sweeps)

#: MaliConfig fields a :class:`GpuConfigStack` treats as sweepable axes.
#: Everything else is baked into the stack's hoisted per-cell tables
#: (issue-cost columns, access-width efficiency, launch overheads), so a
#: variant config must match the base on every other field.
_STACK_AXES = frozenset({"shader_cores", "clock_hz", "register_file_scale"})


def _stack_signature(config: MaliConfig) -> tuple:
    """The config fields a stack bakes into its hoisted tables."""
    return tuple(
        (f.name, getattr(config, f.name))
        for f in fields(config)
        if f.name not in _STACK_AXES
    )


class GpuStackRows:
    """Row arrays of one (config, dram) design point over a cell stack.

    One float64 lane per cell, aligned with the stack's cell order.
    ``feasible`` is False where the kernel no longer fits the config's
    scaled register file (the facade path raises ``CL_OUT_OF_RESOURCES``
    there); infeasible lanes carry ``inf`` seconds and zero utilization.
    """

    __slots__ = (
        "feasible",
        "seconds",
        "alu_utilization",
        "ls_utilization",
        "dram_bandwidth",
        "dram_bytes",
    )

    def __init__(
        self, feasible, seconds, alu_utilization, ls_utilization, dram_bandwidth, dram_bytes
    ):
        self.feasible = feasible
        self.seconds = seconds
        self.alu_utilization = alu_utilization
        self.ls_utilization = ls_utilization
        self.dram_bandwidth = dram_bandwidth
        self.dram_bytes = dram_bytes


class GpuConfigStack:
    """Config-axis vectorization of a fixed set of GPU launch cells.

    A design-space sweep prices the *same* grid of cells under many SoC
    variants.  Everything that does not depend on the swept config axes
    (:data:`_STACK_AXES`: core count, clock, register-file scale) — the
    instruction-mix slices, DRAM traffic, work-group counts, atomic and
    barrier weights — is hoisted into per-cell NumPy columns once; each
    :meth:`rows` call then prices one ``(config, dram)`` point with a
    handful of whole-stack array passes instead of a per-cell Python walk.

    Bitwise contract: every array expression is the elementwise twin of
    the scalar model — same operand values, same IEEE-754 operation
    order (``np.sqrt``/``np.ceil``/``np.maximum`` match their ``math``
    counterparts lane-wise; the first-wins roofline max equals the
    ``np.maximum`` chain by value) — so each lane equals the
    corresponding :class:`GpuLaunchTiming` field from pricing that cell
    through a per-config :class:`GpuPricingModel` facade (asserted in
    ``tests/property/test_grid_pricing_identity.py``).  The stack and
    the facades also share the process-global traffic tables, keyed by
    cache/DRAM config values.
    """

    def __init__(
        self,
        cells,
        config: MaliConfig,
        dram: DramModel,
        caches: CacheHierarchy,
    ) -> None:
        import numpy as np

        cells = tuple(cells)
        if not cells:
            raise ValueError("GpuConfigStack needs at least one cell")
        self.cells = cells
        self.config = config
        self.dram = dram
        self.caches = caches
        self._sig = _stack_signature(config)
        self._model = GpuPricingModel(config, dram, caches)

        group_ord: dict[tuple[int, int, int], int] = {}
        self._group_pricers: list[LaunchPricer] = []
        self._group_streams: list[tuple[WorkloadTraits, int]] = []
        self._group_regs = []
        group_cells: list[list[int]] = []
        gidx: list[int] = []
        for i, cell in enumerate(cells):
            if cell.n_items < 1:
                raise ValueError(f"n_items must be >= 1, got {cell.n_items}")
            pricer = self._model.pricer(cell.compiled, cell.traits, cell.concurrent_agents)
            gk = (id(cell.compiled), id(pricer.traits), cell.concurrent_agents)
            g = group_ord.get(gk)
            if g is None:
                g = group_ord[gk] = len(self._group_pricers)
                self._group_pricers.append(pricer)
                self._group_streams.append((pricer.traits, cell.concurrent_agents))
                self._group_regs.append(cell.compiled.registers)
                group_cells.append([])
            group_cells[g].append(i)
            gidx.append(g)
        self._gidx = np.asarray(gidx, dtype=np.intp)

        # mix-dependent slices: one bulk pass per kernel group, gathered
        # into per-cell columns (bitwise-identical by warm_slices' contract)
        width = len(cells)
        arith = np.empty(width)
        ls = np.empty(width)
        eff = np.empty(width)
        dram_bytes = np.empty(width)
        for g, pricer in enumerate(self._group_pricers):
            idxs = group_cells[g]
            pricer.warm_slices([cells[i].n_items for i in idxs])
            group_bytes = float(pricer._ensure_tables().dram_bytes)
            for i in idxs:
                a, l, e = pricer._slice(cells[i].n_items)
                arith[i] = a
                ls[i] = l
                eff[i] = e
                dram_bytes[i] = group_bytes
        self._arith_raw = arith
        self._ls_raw = ls
        self._access_eff = eff
        self._dram_bytes = dram_bytes

        self._n_f = np.asarray([float(c.n_items) for c in cells])
        self._local = np.asarray([c.local_size for c in cells], dtype=np.int64)
        self._maxlocal_f = np.asarray([float(max(c.local_size, 1)) for c in cells])
        # work-group count is config-independent: same int the scalar
        # distribute() computes, converted exactly to float64
        self._n_wg_f = np.asarray(
            [float(max(1, math.ceil(c.n_items / c.local_size))) for c in cells]
        )
        self._atomic_w = np.asarray(
            [c.compiled.mix.atomic_contention_weight for c in cells]
        )
        self._atomic_wl = np.asarray(
            [c.compiled.mix.atomic_contention_weight_local for c in cells]
        )
        self._barriers = np.asarray([c.compiled.mix.barriers for c in cells])
        self._cv = np.asarray([c.traits.imbalance_cv for c in cells])

        # per-scale (feasible, threads-per-core) group arrays; per-DRAM
        # per-cell base transfer seconds; per-scale hiding factors for
        # the floor_seconds pruning bound
        self._tpc_cache: dict[float, tuple] = {}
        self._transfer_cache: dict = {}
        self._hiding_cache: dict[float, tuple] = {}

    # ------------------------------------------------------------------
    def _tpc_for(self, scale: float) -> tuple:
        import numpy as np

        found = self._tpc_cache.get(scale)
        if found is None:
            feas = []
            tpcs = []
            for report in self._group_regs:
                if fits_register_file(report, scale):
                    feas.append(True)
                    tpcs.append(threads_for_scale(report, scale))
                else:
                    feas.append(False)
                    tpcs.append(1)  # placeholder lane; masked out of rows
            found = self._tpc_cache[scale] = (
                np.asarray(feas, dtype=bool),
                np.asarray(tpcs, dtype=np.int64),
            )
        return found

    def _transfer_for(self, dram: DramModel):
        import numpy as np

        found = self._transfer_cache.get(dram.config)
        if found is None:
            # same construction (and the same process-global table entry)
            # as _MixTables on a facade for this DRAM config
            tables = _traffic_tables(dram, self.caches)
            per_group = []
            for traits, agents in self._group_streams:
                tkey = (traits.streams, agents)
                entry = tables.get(tkey)
                if entry is None:
                    traffic = self.caches.dram_traffic(list(traits.streams))
                    nbytes = sum(traffic.values())
                    transfer_s = (
                        dram.transfer_seconds(
                            "gpu", bytes_by_pattern=traffic, concurrent_agents=agents
                        )
                        if nbytes > 0
                        else 0.0
                    )
                    entry = tables[tkey] = (tuple(traffic.items()), nbytes, transfer_s)
                per_group.append(entry[2])
            found = self._transfer_cache[dram.config] = np.asarray(
                per_group, dtype=np.float64
            )[self._gidx]
        return found

    # ------------------------------------------------------------------
    def _hiding_for(self, scale: float) -> tuple:
        """Per-cell (hiding, bandwidth hiding, dram seconds divisor) at
        one register-file scale — exactly the :meth:`rows` occupancy
        chain, which depends on the config only through the scale."""
        import numpy as np

        found = self._hiding_cache.get(scale)
        if found is None:
            _, tpc_g = self._tpc_for(scale)
            tpc = tpc_g[self._gidx]
            wg_groups = tpc // self._local
            resident = np.where(
                wg_groups >= 1,
                wg_groups * self._local,
                np.maximum((tpc * 0.6).astype(np.int64), 1),
            )
            res_f = resident.astype(np.float64)
            hiding = np.where(
                resident >= FULL_HIDING_THREADS,
                1.0,
                np.maximum(MIN_HIDING, np.sqrt(res_f / float(FULL_HIDING_THREADS))),
            )
            bandwidth_hiding = np.where(
                resident >= FULL_BANDWIDTH_THREADS,
                1.0,
                np.maximum(
                    MIN_HIDING, np.sqrt(res_f / float(FULL_BANDWIDTH_THREADS))
                ),
            )
            found = self._hiding_cache[scale] = (hiding, bandwidth_hiding)
        return found

    def floor_seconds(
        self, dram: DramModel, *, shader_cores, clock_hz, register_file_scale=None
    ):
        """Rigorous per-cell lower bound on :meth:`rows` ``seconds``.

        The roofline floor along the config axis (the stacked twin of
        :func:`roofline_floor_seconds`'s idea):
        ``max(arith_s, ls_s, dram_s) + schedule_s + launch_overhead``,
        dropping only the terms that can only increase the result —
        the atomic lane of the roofline max, the overlap leak and
        barrier additions (non-negative) and the imbalance multiplier
        (>= 1).  With ``register_file_scale`` given, the arith/LS/DRAM
        terms carry the *exact* occupancy-hiding and access-efficiency
        divisors of :meth:`rows` (they depend on the config only
        through the register-file scale); without it they assume
        perfect hiding (divisors of one, still a valid floor since
        every divisor is <= 1) and the additive tail is skipped.

        ``shader_cores`` / ``clock_hz`` may be scalars (returns a
        ``(cells,)`` array) or aligned arrays of k configs (returns
        ``(k, cells)``).  Bitwise rigor: each term is an exact
        operation-prefix of the :meth:`rows` chain for the same lane
        (same operand order), the omissions are monotone under IEEE-754
        rounding, so ``floor <= rows(...).seconds`` holds lane for
        lane, including infeasible lanes (their seconds are ``inf``).
        """
        import numpy as np

        transfer = self._transfer_for(dram)
        cores = np.asarray(shader_cores, dtype=np.float64)
        clock = np.asarray(clock_hz, dtype=np.float64)
        scalar = cores.ndim == 0
        if scalar:
            cores = cores.reshape(1)
            clock = clock.reshape(1)
        arith = (
            self._arith_raw[None, :]
            / (cores * float(self.config.arith_pipes_per_core))[:, None]
            / clock[:, None]
        )
        ls = (
            self._ls_raw[None, :]
            / (cores * float(self.config.ls_pipes_per_core))[:, None]
            / clock[:, None]
        )
        if register_file_scale is None:
            floor = np.maximum(np.maximum(arith, ls), transfer[None, :])
        else:
            hiding, bandwidth_hiding = self._hiding_for(register_file_scale)
            # transfer is 0.0 exactly where there is no DRAM traffic,
            # so the division chain matches rows()'s literal 0.0 lane
            dram_s = transfer / bandwidth_hiding / self._access_eff
            floor = np.maximum(
                np.maximum(arith / hiding[None, :], ls / hiding[None, :]),
                dram_s[None, :],
            )
            schedule_s = (
                self._n_wg_f[None, :] * self.config.wg_schedule_cycles / clock[:, None]
            )
            floor = (floor + schedule_s) + self.config.launch_overhead_s
        return floor[0] if scalar else floor

    # ------------------------------------------------------------------
    def rows(self, config: MaliConfig, dram: DramModel) -> GpuStackRows:
        """Price every cell under one ``(config, dram)`` design point."""
        import numpy as np

        if _stack_signature(config) != self._sig:
            raise ValueError(
                "config differs from the stack base outside the stacked axes "
                f"({', '.join(sorted(_STACK_AXES))})"
            )
        feas_g, tpc_g = self._tpc_for(config.register_file_scale)
        feasible = feas_g[self._gidx]
        tpc = tpc_g[self._gidx]
        transfer = self._transfer_for(dram)

        clock = config.clock_hz
        n_cores = config.shader_cores
        cores_f = float(n_cores)
        log_cores = math.log(max(n_cores, 2))
        arith_denom = float(n_cores * config.arith_pipes_per_core)
        ls_denom = float(n_cores * config.ls_pipes_per_core)

        # derive_occupancy, vectorized: resident threads then the two
        # sqrt hiding factors (int(x) on a positive float == floor)
        wg_groups = tpc // self._local
        resident = np.where(
            wg_groups >= 1,
            wg_groups * self._local,
            np.maximum((tpc * 0.6).astype(np.int64), 1),
        )
        res_f = resident.astype(np.float64)
        hiding = np.where(
            resident >= FULL_HIDING_THREADS,
            1.0,
            np.maximum(MIN_HIDING, np.sqrt(res_f / float(FULL_HIDING_THREADS))),
        )
        bandwidth_hiding = np.where(
            resident >= FULL_BANDWIDTH_THREADS,
            1.0,
            np.maximum(MIN_HIDING, np.sqrt(res_f / float(FULL_BANDWIDTH_THREADS))),
        )

        # distribute(), vectorized (per_core > 0 always: n_wg >= 1)
        per_core = self._n_wg_f / cores_f
        quantization = np.ceil(per_core) / per_core
        ragged = np.where(
            self._cv > 0.0,
            1.0 + self._cv * np.sqrt((2.0 * log_cores) / np.maximum(per_core, 1.0)),
            1.0,
        )
        imbalance = quantization * ragged
        schedule_s = self._n_wg_f * config.wg_schedule_cycles / clock

        arith_s = self._arith_raw / arith_denom / clock / hiding
        ls_s = self._ls_raw / ls_denom / clock / hiding
        # transfer is 0.0 exactly where dram_bytes == 0, so the division
        # chain lands on the scalar path's literal 0.0
        dram_s = transfer / bandwidth_hiding / self._access_eff

        atomic_s = (
            (self._atomic_w * self._n_f) * config.atomic_cycles
            + (self._atomic_wl * self._n_f) * config.atomic_local_cycles / cores_f
        ) / clock
        barrier_s = (
            (self._barriers * self._n_f) / self._maxlocal_f
            * config.barrier_cycles
            / clock
            / cores_f
        )

        peak = np.maximum(np.maximum(np.maximum(arith_s, ls_s), dram_s), atomic_s)
        leak = config.overlap_leak * ((((arith_s + ls_s) + dram_s) + atomic_s) - peak)
        parallel_s = (peak + leak) * imbalance + barrier_s
        seconds = parallel_s + schedule_s + config.launch_overhead_s

        with np.errstate(divide="ignore", invalid="ignore"):
            pos = seconds > 0.0
            alu = np.where(pos, np.minimum(arith_s / seconds, 1.0), 0.0)
            lsu = np.where(pos, np.minimum(ls_s / seconds, 1.0), 0.0)
            dram_bw = np.where(pos, self._dram_bytes / seconds, 0.0)

        if not feasible.all():
            bad = ~feasible
            seconds = np.where(bad, np.inf, seconds)
            alu = np.where(bad, 0.0, alu)
            lsu = np.where(bad, 0.0, lsu)
            dram_bw = np.where(bad, 0.0, dram_bw)

        return GpuStackRows(feasible, seconds, alu, lsu, dram_bw, self._dram_bytes)
