"""Per-launch timing model for the Mali-T604.

``time_launch`` prices one ``clEnqueueNDRangeKernel`` of a compiled
kernel as a three-roofline model with explicit overheads:

* **arithmetic roofline** — issued vector micro-ops across
  4 cores × 2 arithmetic pipes, scaled by latency hiding (occupancy);
* **load/store roofline** — memory instructions through the per-core
  LS pipe (this is what vector loads relieve: one ``vload4`` is one LS
  issue where four scalar loads were four);
* **DRAM roofline** — bytes that miss the L2, at the pattern-dependent
  effective bandwidth of the shared DDR3L interface;

plus atomic serialization, barrier costs, Job-Manager work-group
scheduling, launch overhead, and an imbalance multiplier.  The largest
roofline is the bottleneck; a calibrated fraction of the other two
leaks past the overlap (threads cannot always cover both).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .. import perf
from ..compiler.pipeline import CompiledKernel
from ..ir.analysis import InstructionMix
from ..ir.dtypes import scalar_bits
from ..ir.nodes import AccessPattern, MemSpace
from ..memory.cache import CacheHierarchy
from ..memory.dram import DramModel
from ..workload import WorkloadTraits
from .config import MaliConfig
from .job_manager import Distribution, distribute
from .occupancy import Occupancy, derive_occupancy


@dataclass(frozen=True)
class GpuLaunchTiming:
    """Timing breakdown of one kernel launch on the GPU."""

    seconds: float
    arith_seconds: float
    ls_seconds: float
    dram_seconds: float
    atomic_seconds: float
    barrier_seconds: float
    schedule_seconds: float
    launch_overhead_seconds: float
    imbalance_factor: float
    occupancy: Occupancy
    distribution: Distribution
    dram_bytes: float
    bottleneck: str

    @property
    def alu_utilization(self) -> float:
        """Fraction of the run the arithmetic pipes are busy (power input)."""
        return min(self.arith_seconds / self.seconds, 1.0) if self.seconds > 0 else 0.0

    @property
    def ls_utilization(self) -> float:
        return min(self.ls_seconds / self.seconds, 1.0) if self.seconds > 0 else 0.0

    @property
    def dram_bandwidth(self) -> float:
        """Average achieved DRAM bandwidth over the launch, bytes/s."""
        return self.dram_bytes / self.seconds if self.seconds > 0 else 0.0


def _arith_cycles(mix: InstructionMix, config: MaliConfig, native_math: bool = False) -> float:
    cycles = 0.0
    for (op, base, width, accumulates), count in mix.arith.items():
        cycles += count * config.arith_issue_cost(
            op, base, width, scalar_bits(base), native_math=native_math
        )
    cycles += mix.loop_headers * config.loop_header_cost
    cycles += mix.branches * config.branch_cost
    cycles += mix.calls * config.call_cost
    return cycles


def _ls_cycles(mix: InstructionMix, config: MaliConfig) -> float:
    cycles = 0.0
    for (kind, space, pattern, base, width, sequential, aligned), count in mix.mem.items():
        if space == MemSpace.PRIVATE:
            continue  # register-resident; spills are emitted as GLOBAL
        cost = config.ls_issue_cost(width, scalar_bits(base))
        if width > 1 and not aligned:
            # sliding-window vloads at arbitrary element offsets cross
            # register boundaries: two LS issues each
            cost *= 2.0
        if space == MemSpace.CONSTANT:
            # __constant data comes through the constant cache / uniform
            # registers and barely touches the LS pipe; a broadcast from
            # plain __global memory still pays the full LS transaction
            cost *= config.uniform_load_cost_factor
        cycles += count * cost
    for (op, base, space), count in mix.atomics.items():
        if space == MemSpace.LOCAL:
            cycles += count * config.atomic_local_cycles
        else:
            cycles += count * config.atomic_cycles
    return cycles


def _access_width_efficiency(mix: InstructionMix, config: MaliConfig) -> float:
    """Bandwidth efficiency from the average global-access width.

    Midgard threads issue independent L2/DRAM transactions (no
    warp-level coalescing), so a stream of 32-bit scalar accesses
    sustains only ``scalar_access_dram_efficiency`` of the bandwidth a
    128-bit ``vload4`` stream reaches.  Interpolates linearly in the
    byte-weighted mean access width.
    """
    total_bytes = 0.0
    weighted_bits = 0.0
    for (kind, space, pattern, base, width, sequential, aligned), count in mix.mem.items():
        if space != MemSpace.GLOBAL:
            continue
        from ..ir.dtypes import DType

        nbytes = count * DType(base, width).bytes
        total_bytes += nbytes
        if sequential:
            # a per-thread streaming walk consumes whole cache lines
            # regardless of the instruction width
            weighted_bits += nbytes * config.lane_bits
        else:
            weighted_bits += nbytes * min(width * scalar_bits(base), config.lane_bits)
    if total_bytes <= 0.0:
        return 1.0
    mean_bits = weighted_bits / total_bytes
    # 32-bit accesses -> the scalar floor; 128-bit accesses -> full rate
    frac = min(max((mean_bits - 32.0) / (config.lane_bits - 32.0), 0.0), 1.0)
    low = config.scalar_access_dram_efficiency
    return low + (1.0 - low) * frac


def time_launch(
    compiled: CompiledKernel,
    n_items: int,
    local_size: int,
    traits: WorkloadTraits,
    config: MaliConfig,
    dram: DramModel,
    caches: CacheHierarchy,
    concurrent_agents: int = 1,
) -> GpuLaunchTiming:
    """Price one NDRange launch of ``n_items`` work-items.

    Pure in all arguments (the mutable model objects are keyed by their
    frozen configs), so results are memoized content-addressed: the
    autotuner prices each distinct (kernel, options, local size) point
    once per process.
    """
    key = perf.content_key(
        (
            compiled,
            n_items,
            local_size,
            traits,
            config,
            dram.config,
            caches.l1.config,
            caches.l2.config,
            concurrent_agents,
        )
    )
    return perf.cache("gpu_timing").get_or_compute(
        key,
        lambda: _time_launch_uncached(
            compiled, n_items, local_size, traits, config, dram, caches, concurrent_agents
        ),
    )


def _time_launch_uncached(
    compiled: CompiledKernel,
    n_items: int,
    local_size: int,
    traits: WorkloadTraits,
    config: MaliConfig,
    dram: DramModel,
    caches: CacheHierarchy,
    concurrent_agents: int = 1,
) -> GpuLaunchTiming:
    if n_items < 1:
        raise ValueError(f"n_items must be >= 1, got {n_items}")
    mix = compiled.mix
    totals = mix.scaled(float(n_items))

    occ = derive_occupancy(compiled.registers.threads_per_core, local_size)
    dist, imbalance = distribute(n_items, local_size, config, traits.imbalance_cv)

    clock = config.clock_hz
    n_cores = config.shader_cores

    native_math = compiled.options.native_math
    arith_cycles = _arith_cycles(totals, config, native_math) / (
        n_cores * config.arith_pipes_per_core
    )
    ls_cycles = _ls_cycles(totals, config) / (n_cores * config.ls_pipes_per_core)
    arith_s = arith_cycles / clock / occ.hiding
    ls_s = ls_cycles / clock / occ.hiding

    traffic = caches.dram_traffic(list(traits.streams))
    dram_bytes = sum(traffic.values())
    access_eff = _access_width_efficiency(totals, config)
    dram_s = (
        dram.transfer_seconds("gpu", traffic, concurrent_agents=concurrent_agents)
        / occ.bandwidth_hiding
        / access_eff
        if dram_bytes > 0
        else 0.0
    )

    atomic_s = (
        totals.atomic_contention_weight * config.atomic_cycles
        # local atomics serialize only within one core: 1/n_cores weight
        + totals.atomic_contention_weight_local * config.atomic_local_cycles / n_cores
    ) / clock

    barrier_instances = totals.barriers / max(local_size, 1)
    barrier_s = barrier_instances * config.barrier_cycles / clock / n_cores

    components = {"arith": arith_s, "ls": ls_s, "dram": dram_s, "atomic": atomic_s}
    bottleneck = max(components, key=components.get)
    peak = components[bottleneck]
    leak = config.overlap_leak * (sum(components.values()) - peak)
    parallel_s = (peak + leak) * imbalance + barrier_s

    total = parallel_s + dist.schedule_seconds + config.launch_overhead_s

    return GpuLaunchTiming(
        seconds=total,
        arith_seconds=arith_s,
        ls_seconds=ls_s,
        dram_seconds=dram_s,
        atomic_seconds=atomic_s,
        barrier_seconds=barrier_s,
        schedule_seconds=dist.schedule_seconds,
        launch_overhead_seconds=config.launch_overhead_s,
        imbalance_factor=imbalance,
        occupancy=occ,
        distribution=dist,
        dram_bytes=dram_bytes,
        bottleneck=bottleneck,
    )


def roofline_floor_seconds(
    compiled: CompiledKernel,
    n_items: int,
    traits: WorkloadTraits,
    config: MaliConfig,
    dram: DramModel,
    caches: CacheHierarchy,
) -> float:
    """Optimistic lower bound on ``time_launch(...).seconds``.

    The best case for any launch of this compiled kernel: perfect latency
    hiding (occupancy = 1), full access-width efficiency, no imbalance,
    no overlap leak, and zero barrier/schedule/launch overheads — just
    ``max(arith, ls, dram)``.  Every penalty ``time_launch`` applies is a
    multiplier ≥ 1 or an additive term ≥ 0 on top of these components,
    so the bound holds for every local size; the pruned tuner strategy
    uses it to discard candidates that cannot beat the incumbent.
    """
    if n_items < 1:
        raise ValueError(f"n_items must be >= 1, got {n_items}")
    totals = compiled.mix.scaled(float(n_items))
    clock = config.clock_hz
    n_cores = config.shader_cores
    arith_s = (
        _arith_cycles(totals, config, compiled.options.native_math)
        / (n_cores * config.arith_pipes_per_core)
        / clock
    )
    ls_s = _ls_cycles(totals, config) / (n_cores * config.ls_pipes_per_core) / clock
    traffic = caches.dram_traffic(list(traits.streams))
    dram_s = dram.transfer_seconds("gpu", traffic) if sum(traffic.values()) > 0 else 0.0
    return max(arith_s, ls_s, dram_s)
