"""ARM Mali-T604 GPU architecture model (Figure 1 of the paper)."""

from .config import DEFAULT_OP_COST, MaliConfig
from .job_manager import Distribution, distribute
from .occupancy import (
    FULL_BANDWIDTH_THREADS,
    FULL_HIDING_THREADS,
    MIN_HIDING,
    Occupancy,
    derive_occupancy,
)
from .timing import GpuLaunchTiming, time_launch

__all__ = [
    "DEFAULT_OP_COST",
    "Distribution",
    "FULL_BANDWIDTH_THREADS",
    "FULL_HIDING_THREADS",
    "GpuLaunchTiming",
    "MIN_HIDING",
    "MaliConfig",
    "Occupancy",
    "derive_occupancy",
    "distribute",
    "time_launch",
]
