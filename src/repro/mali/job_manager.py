"""Job Manager model: work-group distribution across shader cores.

The hardware Job Manager (Figure 1) splits an NDRange into work-groups
and feeds them to cores as they drain.  Two effects matter for the
paper's results:

* **per-work-group scheduling cost** — every group costs the Job
  Manager a fixed number of cycles, which is why vectorization's
  reduction of the global work size "allows a reduction of the run-time
  scheduling overheads due to the decrease in the number of
  work-groups";
* **imbalance** — with few groups (quantization) or ragged per-group
  work (spmv), the slowest core sets the finish time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .config import MaliConfig


@dataclass(frozen=True)
class Distribution:
    """How an NDRange lands on the cores."""

    n_work_groups: int
    groups_per_core_max: int
    quantization_factor: float
    schedule_seconds: float


def distribute(
    n_items: int,
    local_size: int,
    config: MaliConfig,
    imbalance_cv: float = 0.0,
) -> tuple[Distribution, float]:
    """Distribute the NDRange; returns (distribution, imbalance_factor).

    ``imbalance_factor`` multiplies the parallel execution time: 1.0 for
    a perfectly balanced launch, larger when work is ragged or when the
    group count barely exceeds the core count.
    """
    n_wg = max(1, math.ceil(n_items / local_size))
    per_core = n_wg / config.shader_cores
    groups_per_core_max = math.ceil(per_core)

    # quantization: finish time is set by the fullest core
    quantization = groups_per_core_max / per_core if per_core > 0 else 1.0

    # ragged work: with many groups the max-of-means concentrates; the
    # expected max grows ~ cv * sqrt(2 ln k / n) for k cores and n groups
    # per core — a standard extreme-value estimate.
    ragged = 1.0
    if imbalance_cv > 0.0 and per_core > 0:
        ragged = 1.0 + imbalance_cv * math.sqrt(
            2.0 * math.log(max(config.shader_cores, 2)) / max(per_core, 1.0)
        )

    schedule_seconds = n_wg * config.wg_schedule_cycles / config.clock_hz
    # called once per priced candidate: fill the instance dict directly
    # instead of paying the frozen-dataclass __init__'s per-field
    # object.__setattr__ (same fields, same values, same pickle/eq/repr)
    dist = object.__new__(Distribution)
    dist.__dict__.update(
        n_work_groups=n_wg,
        groups_per_core_max=groups_per_core_max,
        quantization_factor=quantization,
        schedule_seconds=schedule_seconds,
    )
    return dist, quantization * ragged
