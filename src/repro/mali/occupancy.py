"""Occupancy → latency-hiding model.

Midgard hides arithmetic and memory latency by keeping many threads
resident per core and switching between them every cycle.  With few
resident threads (register-hungry kernels, tiny work-groups) the pipes
stall on dependencies and DRAM latency shows through.  We model the
achievable fraction of pipe/bandwidth utilization as a saturating
function of resident threads: full hiding needs roughly
``FULL_HIDING_THREADS`` threads in flight, with diminishing returns
below that (square-root law — each extra thread hides a decreasing
share of remaining stall time).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..compiler.regalloc import MAX_THREADS_PER_CORE
from ..errors import CLInvalidWorkGroupSize

#: resident threads per core at which latency is fully hidden
FULL_HIDING_THREADS = 64
#: resident threads per core needed to saturate DRAM bandwidth (fewer
#: than for ALU latency: each thread can have several misses in flight)
FULL_BANDWIDTH_THREADS = 32
#: utilization floor: even one thread keeps the pipes this busy
MIN_HIDING = 0.12


@dataclass(frozen=True)
class Occupancy:
    """Resident-thread state of one shader core for a launch."""

    threads_per_core: int
    resident_groups: int
    local_size: int

    @property
    def hiding(self) -> float:
        """Fraction of peak issue/bandwidth the core can sustain."""
        if self.threads_per_core >= FULL_HIDING_THREADS:
            return 1.0
        frac = self.threads_per_core / FULL_HIDING_THREADS
        return max(MIN_HIDING, math.sqrt(frac))

    @property
    def bandwidth_hiding(self) -> float:
        """Fraction of achievable DRAM bandwidth these threads sustain."""
        if self.threads_per_core >= FULL_BANDWIDTH_THREADS:
            return 1.0
        frac = self.threads_per_core / FULL_BANDWIDTH_THREADS
        return max(MIN_HIDING, math.sqrt(frac))

    @property
    def occupancy(self) -> float:
        return self.threads_per_core / MAX_THREADS_PER_CORE


def derive_occupancy(register_limited_threads: int, local_size: int) -> Occupancy:
    """Resident threads per core given register limits and the WG size.

    Work-groups are resident as whole units, so the register-limited
    thread budget is quantized down to a multiple of ``local_size`` —
    this is how a badly chosen local size hurts even register-light
    kernels, and why the paper recommends tuning it by hand.

    Raises ``CL_INVALID_WORK_GROUP_SIZE`` semantics when a single
    work-group cannot fit on a core at all.
    """
    if local_size < 1:
        raise CLInvalidWorkGroupSize(f"local size must be >= 1, got {local_size}")
    if local_size > MAX_THREADS_PER_CORE:
        raise CLInvalidWorkGroupSize(
            f"local size {local_size} exceeds device maximum {MAX_THREADS_PER_CORE}"
        )
    groups = register_limited_threads // local_size
    if groups < 1:
        # a single work-group larger than the register-limited thread
        # budget still runs, but its threads time-share the register
        # file: effective parallelism drops below even the register
        # limit (this is how the driver's NULL pick of a too-large
        # local size hurts register-hungry kernels)
        effective = max(int(register_limited_threads * 0.6), 1)
        return Occupancy(
            threads_per_core=effective,
            resident_groups=1,
            local_size=local_size,
        )
    return Occupancy(
        threads_per_core=groups * local_size,
        resident_groups=groups,
        local_size=local_size,
    )
