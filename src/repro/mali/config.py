"""Mali-T604 architecture parameters.

Figure 1 of the paper: four shader cores behind a Job Manager, an MMU
and a Snoop-Control-Unit-coherent shared L2.  Each *tripipe* shader core
has two arithmetic pipelines, one load/store pipeline and one texturing
pipeline (unused by compute), all operating on 128-bit vector registers.
The Exynos 5250 clocks the GPU at 533 MHz.

Per-op issue costs follow the Midgard arithmetic pipe: simple VFP ops
are single-issue at full width; divides/square roots run on the iterated
unit; transcendentals expand to polynomial sequences.  FP64 executes at
half the FP32 lane rate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..errors import CalibrationError
from ..ir.dtypes import NATIVE_REGISTER_BITS
from ..ir.nodes import OpKind


#: issue-slot cost per 128-bit micro-op, by op kind
DEFAULT_OP_COST: dict[OpKind, float] = {
    OpKind.ADD: 1.0,
    OpKind.MUL: 1.0,
    OpKind.FMA: 1.0,
    OpKind.MOV: 0.5,
    OpKind.CMP: 1.0,
    OpKind.BITOP: 1.0,
    OpKind.CVT: 1.0,
    # the Midgard SFU path: fast hardware reciprocal-sqrt estimate plus
    # a Newton step; exp/log/sin are short polynomial sequences emitted
    # by the OpenCL compiler (far cheaper than the A15's scalar libm)
    OpKind.DIV: 10.0,
    OpKind.SQRT: 12.0,
    OpKind.RSQRT: 6.0,
    OpKind.EXP: 40.0,
    OpKind.LOG: 40.0,
    OpKind.SIN: 48.0,
}


@dataclass(frozen=True)
class MaliConfig:
    """Calibrated Mali-T604 hardware description."""

    shader_cores: int = 4
    arith_pipes_per_core: int = 2
    ls_pipes_per_core: int = 1
    clock_hz: float = 533e6
    lane_bits: int = NATIVE_REGISTER_BITS
    #: FP64 issue-rate penalty relative to FP32 (Midgard: half rate)
    fp64_cost_factor: float = 2.0
    #: maximum OpenCL work-group size the driver reports
    max_work_group_size: int = 256
    op_cost: dict[OpKind, float] = field(default_factory=lambda: dict(DEFAULT_OP_COST))

    # overheads ---------------------------------------------------------
    #: host-side driver cost to submit one kernel launch, seconds
    launch_overhead_s: float = 60e-6
    #: Job Manager cycles to schedule one work-group onto a core
    wg_schedule_cycles: float = 60.0
    #: cycles for a work-group barrier (sync across resident threads)
    barrier_cycles: float = 40.0
    #: cycles for one uncontended *global* atomic RMW (round trip
    #: through the coherent L2 / Snoop Control Unit)
    atomic_cycles: float = 14.0
    #: cycles for a *local* (work-group scope) atomic, resolved near the
    #: shader core
    atomic_local_cycles: float = 4.0
    #: issue cost of loop header (inc+cmp+branch) and of a function call
    loop_header_cost: float = 2.0
    call_cost: float = 6.0
    branch_cost: float = 1.0
    #: fraction of the non-bottleneck pipes' time that fails to overlap
    #: with the bottleneck (0 = perfect roofline overlap)
    overlap_leak: float = 0.15
    #: DRAM efficiency of fully scalar (32-bit) global accesses relative
    #: to 128-bit vector accesses.  Midgard threads do not coalesce like
    #: NVIDIA warps: each thread issues its own L2/DRAM transaction, so
    #: narrow accesses waste most of each burst — the hardware reason
    #: the paper's "vector load and store operations ... lead to more
    #: efficient use of the available bandwidth".
    scalar_access_dram_efficiency: float = 0.50
    #: LS-issue discount for __constant / broadcast loads (served by the
    #: constant cache and uniform registers, not full LS transactions)
    uniform_load_cost_factor: float = 0.25
    #: issue-cost multiplier for transcendentals compiled as native_*
    #: builtins (reduced-precision hardware estimates instead of the
    #: IEEE polynomial sequences)
    native_math_cost_factor: float = 0.25
    #: per-micro-op discount for ops wider than one 128-bit register:
    #: the expanded micro-op sequences are mutually independent, which
    #: fills the dual-issue slots the in-order-per-thread pipe would
    #: otherwise leave empty — §III-B: "using types wider than the
    #: underlying hardware can improve the instruction-level scheduling"
    wide_type_ilp_bonus: float = 0.08
    #: register-file capacity relative to the T604 (1.0 = the baseline
    #: 32×128-bit allocation budget).  A design-space axis: a larger file
    #: keeps more threads resident for register-hungry kernels, a smaller
    #: one turns the paper's DP register-exhaustion collapse into a hard
    #: ``CL_OUT_OF_RESOURCES`` earlier.  Compile-time spill decisions are
    #: untouched (the compiler targets the baseline ISA); only runtime
    #: residency and launchability scale — see
    #: :func:`repro.compiler.regalloc.threads_for_scale`.
    register_file_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.shader_cores < 1 or self.arith_pipes_per_core < 1 or self.ls_pipes_per_core < 1:
            raise CalibrationError("Mali core/pipe counts must be >= 1")
        if self.clock_hz <= 0:
            raise CalibrationError("clock must be positive")
        if self.register_file_scale <= 0:
            raise CalibrationError("register_file_scale must be positive")
        missing = [op for op in OpKind if op not in self.op_cost]
        if missing:
            raise CalibrationError(f"op_cost missing entries for {missing}")

    # ------------------------------------------------------------------
    def micro_ops(self, width: int, scalar_bits: int) -> int:
        """128-bit micro-ops for a vector op of ``width`` lanes."""
        return max(1, math.ceil(width * scalar_bits / self.lane_bits))

    #: op kinds with a native_* fast path
    NATIVE_OPS = (OpKind.DIV, OpKind.SQRT, OpKind.RSQRT, OpKind.EXP, OpKind.LOG, OpKind.SIN)

    def arith_issue_cost(
        self, op: OpKind, *, base: str, width: int, scalar_bits: int, native_math: bool = False
    ) -> float:
        """Issue-slot cycles for one IR arithmetic op on one pipe.

        Everything past ``op`` is keyword-only (the ``run_version``
        convention): ``base``/``width``/``scalar_bits`` are three adjacent
        scalars that are trivially transposable when positional.
        """
        micro = self.micro_ops(width, scalar_bits)
        cost = self.op_cost[op] * micro
        if micro > 1:
            # ILP from the independent micro-ops of an over-wide type
            cost *= 1.0 - self.wide_type_ilp_bonus
        if native_math and op in self.NATIVE_OPS:
            cost = max(cost * self.native_math_cost_factor, 1.0)
        if base == "f64":
            cost *= self.fp64_cost_factor
        return cost

    def ls_issue_cost(self, width: int, *, scalar_bits: int) -> float:
        """Load/store pipe cycles for one IR memory op (cache-hit cost).

        ``scalar_bits`` is keyword-only, matching ``arith_issue_cost``.
        """
        return float(self.micro_ops(width, scalar_bits))

    @property
    def peak_fp32_flops(self) -> float:
        """Theoretical peak single-precision FLOP/s (FMA on all lanes)."""
        lanes = self.lane_bits // 32
        return self.shader_cores * self.arith_pipes_per_core * lanes * 2 * self.clock_hz

    @property
    def peak_fp64_flops(self) -> float:
        lanes = self.lane_bits // 64
        return (
            self.shader_cores
            * self.arith_pipes_per_core
            * lanes
            * 2
            * self.clock_hz
            / self.fp64_cost_factor
        )

    def describe(self) -> str:
        """Textual rendering of the Figure 1 component inventory."""
        return "\n".join(
            [
                "ARM Mali-T604 (Midgard) GPU",
                f"  Job Manager -> {self.shader_cores} shader cores @ {self.clock_hz/1e6:.0f} MHz",
                f"  per core: {self.arith_pipes_per_core} arithmetic pipes, "
                f"{self.ls_pipes_per_core} load/store pipe, 1 texturing pipe (idle for compute)",
                f"  {self.lane_bits}-bit vector registers; FP64 at 1/{self.fp64_cost_factor:.0f} rate",
                f"  peak {self.peak_fp32_flops/1e9:.1f} GFLOPS fp32 / {self.peak_fp64_flops/1e9:.1f} GFLOPS fp64",
                "  MMU + Snoop Control Unit: unified, coherent memory with the CPU",
                f"  max work-group size {self.max_work_group_size}",
            ]
        )
