"""Deterministic Pareto machinery (minimize two objectives).

Three interchangeable views of the same non-dominated set over points
carrying ``(seconds, energy_j)`` objectives (both minimized) and an
optional ``feasible`` flag:

* :func:`skyline` — the sort-based O(n log n) sweep used everywhere;
* :func:`skyline_reference` — the O(n²) all-pairs scan it replaced,
  kept as the property-test oracle and the benchmark baseline;
* :class:`OnlineFrontier` — an incremental accumulator that maintains
  the frontier as points arrive one chunk at a time, used by the
  streaming design-space driver so dominated points can be discarded
  the moment they are priced.

All three return/hold *exactly* the same point set in the same
deterministic order — sorted by :func:`point_key` — for any input,
including ties (equal ``(seconds, energy)`` pairs all survive: neither
strictly dominates the other), duplicated coordinates, infeasible
entries (always excluded) and arbitrary arrival order for the online
form.  ``tests/property/test_pareto_properties.py`` holds the
hypothesis proofs.
"""

from __future__ import annotations

from bisect import bisect_left

__all__ = [
    "point_key",
    "strictly_dominates",
    "skyline",
    "skyline_reference",
    "OnlineFrontier",
]


def point_key(p):
    """Total deterministic order: (seconds, energy, config name, version)."""
    return (p.seconds, p.energy_j, p.config_name, p.version)


def strictly_dominates(a_seconds, a_energy, b_seconds, b_energy) -> bool:
    """``(a_s, a_e)`` Pareto-dominates ``(b_s, b_e)``, both minimized."""
    return (
        a_seconds <= b_seconds
        and a_energy <= b_energy
        and (a_seconds < b_seconds or a_energy < b_energy)
    )


def _is_feasible(p) -> bool:
    return getattr(p, "feasible", True)


def skyline(points, key=point_key) -> tuple:
    """Non-dominated feasible points in O(n log n), sorted by ``key``.

    One sorted sweep: points arrive grouped by equal ``seconds``; a
    group's minimum-energy members survive iff that minimum is strictly
    below the best energy seen at strictly smaller ``seconds`` (ties on
    both coordinates all survive — none strictly dominates another);
    everything else in the group is dominated either by an earlier
    point (``s' < s``, ``e' <= e``) or by a group sibling (``s`` equal,
    ``e'`` smaller).  Value-identical to :func:`skyline_reference`.
    """
    feasible = sorted((p for p in points if _is_feasible(p)), key=key)
    out = []
    best_e = float("inf")
    i, n = 0, len(feasible)
    while i < n:
        k = key(feasible[i])
        s, gmin = k[0], k[1]
        if gmin < best_e:
            while i < n:
                kj = key(feasible[i])
                if kj[0] != s or kj[1] != gmin:
                    break
                out.append(feasible[i])
                i += 1
            best_e = gmin
        # skip the rest of the equal-seconds group (energy > gmin)
        while i < n and key(feasible[i])[0] == s:
            i += 1
    return tuple(out)


def skyline_reference(points, key=point_key) -> tuple:
    """The O(n²) all-pairs frontier — oracle for :func:`skyline`."""
    feasible = [p for p in points if _is_feasible(p)]
    keys = [key(p) for p in feasible]
    front = [
        p
        for p, kp in zip(feasible, keys)
        if not any(strictly_dominates(kq[0], kq[1], kp[0], kp[1]) for kq in keys)
    ]
    return tuple(sorted(front, key=key))


class OnlineFrontier:
    """Incrementally maintained Pareto frontier (minimize both axes).

    Holds the current non-dominated set sorted by ``key``; the distinct
    ``(seconds, energy)`` pairs therefore form a staircase — strictly
    increasing seconds, strictly decreasing energy — which makes every
    operation a bisect plus a contiguous splice:

    * :meth:`add` — O(log f) dominance test (the only candidate that
      can dominate a new point is its staircase predecessor), then a
      contiguous deletion of the now-dominated suffix run;
    * :meth:`strictly_dominates` — the pruning query: is a hypothetical
      ``(seconds, energy)`` strictly dominated by a current member?

    The final set is *order-independent* — whatever the arrival order,
    :meth:`points` equals ``skyline(everything added)``, same ordering
    (property-tested under random chunkings and shuffles).
    """

    __slots__ = ("_key", "_keys", "_points")

    def __init__(self, points=(), key=point_key) -> None:
        self._key = key
        self._keys: list = []
        self._points: list = []
        self.update(points)

    def __len__(self) -> int:
        return len(self._points)

    def points(self) -> tuple:
        """The current frontier, sorted by the key (a fresh tuple)."""
        return tuple(self._points)

    def strictly_dominates(self, seconds, energy) -> bool:
        """Is ``(seconds, energy)`` strictly dominated by the frontier?

        Bisecting with the bare 2-tuple lands on the first member with
        ``(s', e') >= (seconds, energy)`` lexicographically (a 2-tuple
        prefix compares below any 4-tuple key extending it), so the
        predecessor is lex-smaller; lex-smaller plus ``e' <= energy``
        is exactly strict domination.
        """
        keys = self._keys
        i = bisect_left(keys, (seconds, energy))
        return i > 0 and keys[i - 1][1] <= energy

    def add(self, p) -> bool:
        """Offer one point; returns True iff it joined the frontier.

        Infeasible and strictly-dominated points are rejected; members
        the new point dominates are evicted (safe by transitivity: any
        point they dominated is also dominated by the newcomer).  Ties
        on both coordinates coexist.
        """
        if not _is_feasible(p):
            return False
        k = self._key(p)
        s, e = k[0], k[1]
        keys = self._keys
        i = bisect_left(keys, (s, e))
        if i > 0 and keys[i - 1][1] <= e:
            return False
        # evict the dominated run: skip equal-(s, e) ties, then every
        # following member with energy >= e (their seconds are >= s)
        j, n = i, len(keys)
        while j < n and keys[j][0] == s and keys[j][1] == e:
            j += 1
        end = j
        while end < n and keys[end][1] >= e:
            end += 1
        if end > j:
            del keys[j:end]
            del self._points[j:end]
        ins = bisect_left(keys, k, i)
        keys.insert(ins, k)
        self._points.insert(ins, p)
        return True

    def update(self, points) -> int:
        """Offer many points; returns how many joined (may evict)."""
        return sum(self.add(p) for p in points)
