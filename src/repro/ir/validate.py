"""Structural validation of kernel IR trees.

The compiler validates kernels before running passes so that model bugs
surface as :class:`repro.errors.IRError` with a path to the offending
node rather than as silent mispricing deep inside a device model.
"""

from __future__ import annotations

from ..errors import IRError
from .dtypes import VECTOR_WIDTHS
from .nodes import (
    Arith,
    Atomic,
    Barrier,
    Block,
    Branch,
    BufferParam,
    Call,
    Kernel,
    Loop,
    MemAccess,
    MemSpace,
)


def validate(kernel: Kernel) -> None:
    """Raise :class:`IRError` if the kernel is structurally invalid."""
    if not kernel.name:
        raise IRError("kernel must have a name")
    if kernel.elems_per_item < 1:
        raise IRError(f"{kernel.name}: elems_per_item must be >= 1, got {kernel.elems_per_item}")
    if kernel.base_live_values <= 0:
        raise IRError(f"{kernel.name}: base_live_values must be positive")

    seen: set[str] = set()
    buffer_names: set[str] = set()
    for p in kernel.params:
        if p.name in seen:
            raise IRError(f"{kernel.name}: duplicate parameter {p.name!r}")
        seen.add(p.name)
        if isinstance(p, BufferParam):
            buffer_names.add(p.name)
            if p.record_fields < 1:
                raise IRError(f"{kernel.name}: param {p.name!r} record_fields must be >= 1")
            if p.space == MemSpace.PRIVATE:
                raise IRError(f"{kernel.name}: buffer param {p.name!r} cannot be __private")

    _validate_block(kernel.body, kernel.name, buffer_names, path="body")


def _validate_block(block: Block, kname: str, buffers: set[str], path: str) -> None:
    for i, stmt in enumerate(block):
        where = f"{kname}:{path}[{i}]"
        count = getattr(stmt, "count", 1.0)
        if count < 0:
            raise IRError(f"{where}: negative count {count}")
        if isinstance(stmt, (Arith, MemAccess)):
            if stmt.dtype.width not in VECTOR_WIDTHS:
                raise IRError(f"{where}: invalid width {stmt.dtype.width}")
        if isinstance(stmt, MemAccess):
            if stmt.param is not None and stmt.param not in buffers:
                raise IRError(f"{where}: access references unknown buffer {stmt.param!r}")
            if stmt.space == MemSpace.CONSTANT and stmt.kind.value == "store":
                raise IRError(f"{where}: cannot store to __constant memory")
        elif isinstance(stmt, Atomic):
            if not 0.0 <= stmt.contention <= 1.0:
                raise IRError(f"{where}: contention must be in [0, 1], got {stmt.contention}")
        elif isinstance(stmt, Branch):
            if not 0.0 <= stmt.taken_prob <= 1.0:
                raise IRError(f"{where}: taken_prob must be in [0, 1], got {stmt.taken_prob}")
            _validate_block(stmt.body, kname, buffers, f"{path}[{i}].body")
            if stmt.orelse is not None:
                _validate_block(stmt.orelse, kname, buffers, f"{path}[{i}].orelse")
        elif isinstance(stmt, Loop):
            if stmt.trip < 0:
                raise IRError(f"{where}: negative trip count {stmt.trip}")
            if stmt.unroll < 1:
                raise IRError(f"{where}: unroll factor must be >= 1, got {stmt.unroll}")
            _validate_block(stmt.body, kname, buffers, f"{path}[{i}].body")
        elif isinstance(stmt, Call):
            _validate_block(stmt.body, kname, buffers, f"{path}[{i}].body")
        elif isinstance(stmt, Barrier):
            pass
