"""A compact textual kernel language that parses to :class:`Kernel` IR.

The builder API is what the benchmark suite uses; this parser offers the
same expressiveness as readable text, for quick experiments, docs and
tests.  Example::

    kernel saxpy(global const restrict float* x,
                 global restrict float* y) {
        live 4;
        int_ops 2;
        load f32 unit from x;
        load f32 unit from y;
        fma f32;
        store f32 unit to y;
    }

    kernel dot(global const float* a, global const float* b,
               global float* out) {
        loop 1024 per_item {
            load f32 unit from a sequential;
            load f32 unit from b sequential;
            fma f32 accum;
        }
        store f32 unit to out per_item;
    }

Statement forms (one per line, ``;``-terminated; ``#`` comments)::

    live N;                         # base live-value estimate
    int_ops N [per_element];        # index arithmetic
    load  TYPE [PATTERN] [from P] [xN] [per_item] [sequential]
          [unaligned] [novec] [SPACE];
    store TYPE [PATTERN] [to P]   [...same flags...];
    OP TYPE [xN] [per_item] [novec] [accum];     # add mul fma div sqrt
                                                 # rsqrt exp log sin cmp
                                                 # mov cvt bitop
    atomic OP TYPE [xN] [contention F] [local];
    barrier [xN];
    loop TRIP [dynamic] [novec] [per_item] { ... }
    branch P [divergent] [xN] { ... }
    call NAME [inlined] [xN] { ... }

``TYPE`` accepts IR (``f32``, ``f64x4``) and OpenCL (``float``,
``double4``) spellings; ``PATTERN`` is one of ``unit``, ``strided``,
``gather``, ``broadcast`` (default ``unit``).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..errors import IRError
from .builder import KernelBuilder
from .dtypes import dtype as parse_dtype
from .nodes import AccessPattern, Kernel, Layout, MemSpace, OpKind, Scaling

_OP_NAMES = {op.value: op for op in OpKind}
_PATTERNS = {
    "unit": AccessPattern.UNIT,
    "strided": AccessPattern.STRIDED,
    "gather": AccessPattern.GATHER,
    "broadcast": AccessPattern.BROADCAST,
}
_SPACES = {
    "global_mem": MemSpace.GLOBAL,
    "constant_mem": MemSpace.CONSTANT,
    "local_mem": MemSpace.LOCAL,
}

_TOKEN_RE = re.compile(r"[{}();,*]|[^\s{}();,*]+")


@dataclass
class _Token:
    text: str
    line: int


class _Stream:
    def __init__(self, tokens: list[_Token]):
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> _Token | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> _Token:
        tok = self.peek()
        if tok is None:
            raise IRError("unexpected end of kernel source")
        self.pos += 1
        return tok

    def expect(self, text: str) -> _Token:
        tok = self.next()
        if tok.text != text:
            raise IRError(f"line {tok.line}: expected {text!r}, got {tok.text!r}")
        return tok

    def accept(self, text: str) -> bool:
        tok = self.peek()
        if tok is not None and tok.text == text:
            self.pos += 1
            return True
        return False


def _tokenize(source: str) -> list[_Token]:
    tokens: list[_Token] = []
    for lineno, line in enumerate(source.splitlines(), start=1):
        line = line.split("#", 1)[0]
        for match in _TOKEN_RE.finditer(line):
            tokens.append(_Token(match.group(), lineno))
    return tokens


def parse_kernel(source: str) -> Kernel:
    """Parse one kernel definition; raises :class:`IRError` on problems."""
    kernels = parse_kernels(source)
    if len(kernels) != 1:
        raise IRError(f"expected exactly one kernel, found {len(kernels)}")
    return kernels[0]


def parse_kernels(source: str) -> list[Kernel]:
    """Parse every kernel definition in the source."""
    stream = _Stream(_tokenize(source))
    kernels = []
    while stream.peek() is not None:
        kernels.append(_parse_one(stream))
    return kernels


# ---------------------------------------------------------------------------


def _parse_one(stream: _Stream) -> Kernel:
    stream.expect("kernel")
    name_tok = stream.next()
    builder = KernelBuilder(name_tok.text)
    state = {"live": 8.0}

    stream.expect("(")
    _parse_params(stream, builder)
    stream.expect("{")
    _parse_block(stream, builder, state)
    return builder.build(base_live_values=state["live"])


def _parse_params(stream: _Stream, builder: KernelBuilder) -> None:
    if stream.accept(")"):
        return
    while True:
        _parse_one_param(stream, builder)
        tok = stream.next()
        if tok.text == ")":
            return
        if tok.text != ",":
            raise IRError(f"line {tok.line}: expected ',' or ')' in parameter list")


def _parse_one_param(stream: _Stream, builder: KernelBuilder) -> None:
    space = MemSpace.GLOBAL
    const = restrict = False
    words: list[_Token] = []
    is_pointer = False
    record_fields = 1
    layout = Layout.FLAT
    while True:
        tok = stream.peek()
        if tok is None:
            raise IRError("unterminated parameter list")
        if tok.text in (",", ")"):
            break
        tok = stream.next()
        if tok.text == "global":
            space = MemSpace.GLOBAL
        elif tok.text == "constant":
            space = MemSpace.CONSTANT
        elif tok.text == "local":
            space = MemSpace.LOCAL
        elif tok.text == "const":
            const = True
        elif tok.text == "restrict":
            restrict = True
        elif tok.text == "*":
            is_pointer = True
        elif tok.text == "aos":
            stream.expect("(")
            fields_tok = stream.next()
            try:
                record_fields = int(fields_tok.text)
            except ValueError:
                raise IRError(
                    f"line {fields_tok.line}: aos(N) needs an integer field count"
                ) from None
            stream.expect(")")
            layout = Layout.AOS
        else:
            words.append(tok)
    if len(words) != 2:
        line = words[0].line if words else 0
        raise IRError(f"line {line}: parameter needs a type and a name")
    type_tok, name_tok = words[0], words[-1]
    try:
        dt = parse_dtype(type_tok.text)
    except ValueError as exc:
        raise IRError(f"line {type_tok.line}: {exc}") from None
    if is_pointer or layout == Layout.AOS:
        builder.buffer(
            name_tok.text, dt, space=space, const=const, restrict=restrict,
            layout=layout, record_fields=record_fields,
        )
    else:
        builder.scalar(name_tok.text, dt)


def _parse_block(stream: _Stream, builder: KernelBuilder, state: dict) -> None:
    while True:
        tok = stream.next()
        if tok.text == "}":
            return
        _parse_statement(tok, stream, builder, state)


def _collect_until_semicolon(stream: _Stream) -> list[_Token]:
    out = []
    while True:
        tok = stream.next()
        if tok.text == ";":
            return out
        if tok.text in ("{", "}"):
            raise IRError(f"line {tok.line}: missing ';' before {tok.text!r}")
        out.append(tok)


def _flag_value(words: list[_Token], key: str, default: float) -> float:
    for i, tok in enumerate(words):
        if tok.text == key:
            if i + 1 >= len(words):
                raise IRError(f"line {tok.line}: {key} needs a value")
            return float(words[i + 1].text)
    return default


def _count(words: list[_Token]) -> float:
    for tok in words:
        if tok.text.startswith("x"):
            try:
                return float(tok.text[1:])
            except ValueError:
                continue
    return 1.0


def _has(words: list[_Token], flag: str) -> bool:
    return any(t.text == flag for t in words)


def _parse_statement(tok: _Token, stream: _Stream, builder: KernelBuilder, state: dict) -> None:
    word = tok.text
    if word == "live":
        value = stream.next()
        state["live"] = float(value.text)
        stream.expect(";")
    elif word == "int_ops":
        words = _collect_until_semicolon(stream)
        count = float(words[0].text)
        scaling = Scaling.PER_ELEMENT if _has(words, "per_element") else Scaling.PER_ITEM
        builder.int_ops(count, scaling=scaling)
    elif word in ("load", "store"):
        words = _collect_until_semicolon(stream)
        dt = parse_dtype(words[0].text)
        pattern = AccessPattern.UNIT
        space = MemSpace.GLOBAL
        param = None
        for i, w in enumerate(words[1:], start=1):
            if w.text in _PATTERNS:
                pattern = _PATTERNS[w.text]
            elif w.text in _SPACES:
                space = _SPACES[w.text]
            elif w.text in ("from", "to"):
                param = words[i + 1].text
        kwargs = dict(
            pattern=pattern,
            space=space,
            count=_count(words),
            scaling=Scaling.PER_ITEM if _has(words, "per_item") else Scaling.PER_ELEMENT,
            vectorizable=not _has(words, "novec"),
            param=param,
            sequential=_has(words, "sequential"),
            aligned=not _has(words, "unaligned"),
        )
        (builder.load if word == "load" else builder.store)(dt, **kwargs)
    elif word in _OP_NAMES:
        words = _collect_until_semicolon(stream)
        dt = parse_dtype(words[0].text)
        builder.arith(
            _OP_NAMES[word],
            dt,
            count=_count(words),
            scaling=Scaling.PER_ITEM if _has(words, "per_item") else Scaling.PER_ELEMENT,
            vectorizable=not _has(words, "novec"),
            accumulates=_has(words, "accum"),
        )
    elif word == "atomic":
        words = _collect_until_semicolon(stream)
        op = _OP_NAMES.get(words[0].text)
        if op is None:
            raise IRError(f"line {words[0].line}: unknown atomic op {words[0].text!r}")
        dt = parse_dtype(words[1].text)
        builder.atomic(
            op,
            dt,
            count=_count(words),
            contention=_flag_value(words, "contention", 0.01),
            space=MemSpace.LOCAL if _has(words, "local") else MemSpace.GLOBAL,
        )
    elif word == "barrier":
        words = _collect_until_semicolon(stream)
        builder.barrier(count=_count(words) if words else 1.0)
    elif word == "loop":
        trip_tok = stream.next()
        try:
            trip = float(trip_tok.text)
        except ValueError:
            raise IRError(f"line {trip_tok.line}: loop needs a numeric trip count") from None
        flags = []
        while not stream.accept("{"):
            flags.append(stream.next())
        with builder.loop(
            trip=trip,
            vectorizable=not _has(flags, "novec"),
            static_trip=not _has(flags, "dynamic"),
            scaling=Scaling.PER_ITEM if _has(flags, "per_item") else Scaling.PER_ELEMENT,
        ):
            _parse_block(stream, builder, state)
    elif word == "branch":
        prob_tok = stream.next()
        prob = float(prob_tok.text)
        flags = []
        while not stream.accept("{"):
            flags.append(stream.next())
        with builder.branch(
            taken_prob=prob,
            divergent=_has(flags, "divergent"),
            count=_count(flags),
        ):
            _parse_block(stream, builder, state)
    elif word == "call":
        name_tok = stream.next()
        flags = []
        while not stream.accept("{"):
            flags.append(stream.next())
        with builder.call(
            name_tok.text, inlined=_has(flags, "inlined"), count=_count(flags)
        ):
            _parse_block(stream, builder, state)
    else:
        raise IRError(f"line {tok.line}: unknown statement {word!r}")
