"""Instruction-mix analysis over the kernel IR.

:func:`analyze` flattens a kernel body into an :class:`InstructionMix`:
expected per-work-item counts of issued arithmetic operations (keyed by
op kind, base type and vector width), memory operations (keyed by kind,
space, pattern, base type and width), atomics, barriers, branches, loop
header executions and non-inlined calls.

All counts are *per work-item*.  The vector width of each operation
already encodes how many problem elements it covers, so the analysis
never multiplies by :attr:`Kernel.elems_per_item` — that field is launch
bookkeeping (it shrinks the NDRange).
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field, fields
from typing import Callable, Iterator

from .. import perf
from .dtypes import DType
from .nodes import (
    AccessPattern,
    Arith,
    Atomic,
    Barrier,
    Block,
    Branch,
    Call,
    FLOPS_PER_OP,
    Kernel,
    Loop,
    MemAccess,
    MemKind,
    MemSpace,
    OpKind,
    Stmt,
)

ArithKey = tuple[OpKind, str, int, bool]                 # (op, base, width, accumulates)
MemKey = tuple[MemKind, MemSpace, AccessPattern, str, int, bool, bool]  # (kind, space, pattern, base, width, sequential, aligned)
AtomicKey = tuple[OpKind, str, MemSpace]  # (op, base, space)


@dataclass
class InstructionMix:
    """Expected per-work-item operation counts of a kernel."""

    arith: dict[ArithKey, float] = field(default_factory=lambda: defaultdict(float))
    mem: dict[MemKey, float] = field(default_factory=lambda: defaultdict(float))
    atomics: dict[AtomicKey, float] = field(default_factory=lambda: defaultdict(float))
    #: contention-weighted atomic count (sum of count*contention), by scope
    atomic_contention_weight: float = 0.0
    atomic_contention_weight_local: float = 0.0
    barriers: float = 0.0
    branches: float = 0.0
    divergent_branches: float = 0.0
    loop_headers: float = 0.0
    calls: float = 0.0

    def __getstate__(self):
        # the CPU pricing layer attaches a derived column cache to the
        # instance dict (see ``cpu.pricing._cpu_tables_for``); it is
        # per-process and rebuildable, so only declared fields travel
        return {f.name: getattr(self, f.name) for f in fields(self)}

    # ------------------------------------------------------------------
    # aggregate views used by the device models
    # ------------------------------------------------------------------
    def flops(self, base: str | None = None) -> float:
        """Floating-point operations per work-item (lane-accurate)."""
        total = 0.0
        for (op, b, width, acc), count in self.arith.items():
            if base is not None and b != base:
                continue
            if b.startswith("f"):
                total += FLOPS_PER_OP[op] * width * count
        return total

    def arith_issues(self) -> float:
        """Issued arithmetic instructions (one vector op = one issue)."""
        return sum(self.arith.values())

    def mem_issues(self, space: MemSpace | None = None) -> float:
        total = 0.0
        for (kind, sp, pattern, base, width, seq, al), count in self.mem.items():
            if space is None or sp == space:
                total += count
        return total

    def bytes_moved(
        self,
        space: MemSpace | None = None,
        kind: MemKind | None = None,
        pattern: AccessPattern | None = None,
    ) -> float:
        """Bytes touched per work-item, optionally filtered."""
        total = 0.0
        for (k, sp, pat, base, width, seq, al), count in self.mem.items():
            if space is not None and sp != space:
                continue
            if kind is not None and k != kind:
                continue
            if pattern is not None and pat != pattern:
                continue
            total += count * DType(base, width).bytes
        return total

    def bytes_by_pattern(self, space: MemSpace = MemSpace.GLOBAL) -> dict[AccessPattern, float]:
        """Per-pattern byte totals for a space (the DRAM model's input)."""
        out: dict[AccessPattern, float] = defaultdict(float)
        for (k, sp, pat, base, width, seq, al), count in self.mem.items():
            if sp == space:
                out[pat] += count * DType(base, width).bytes
        # atomics move data too: count one RMW round trip per atomic
        for (op, base, atomic_space), count in self.atomics.items():
            out[AccessPattern.ATOMIC] += 2 * count * DType(base, 1).bytes
        return dict(out)

    def atomic_ops(self) -> float:
        return sum(self.atomics.values())

    def max_vector_width(self) -> int:
        widths = [w for (_, _, w, _) in self.arith] + [w for (_, _, _, _, w, _, _) in self.mem]
        return max(widths, default=1)

    def total_issues(self) -> float:
        """All issued instructions (arith + mem + atomics + overheads)."""
        return (
            self.arith_issues()
            + self.mem_issues()
            + self.atomic_ops()
            + self.branches
            + self.loop_headers
            + self.calls
        )

    def scaled(self, factor: float) -> "InstructionMix":
        """A copy with every count multiplied by ``factor``."""
        out = InstructionMix()
        for k, v in self.arith.items():
            out.arith[k] = v * factor
        for k, v in self.mem.items():
            out.mem[k] = v * factor
        for k, v in self.atomics.items():
            out.atomics[k] = v * factor
        out.atomic_contention_weight = self.atomic_contention_weight * factor
        out.atomic_contention_weight_local = self.atomic_contention_weight_local * factor
        out.barriers = self.barriers * factor
        out.branches = self.branches * factor
        out.divergent_branches = self.divergent_branches * factor
        out.loop_headers = self.loop_headers * factor
        out.calls = self.calls * factor
        return out

    def merged(self, other: "InstructionMix") -> "InstructionMix":
        out = self.scaled(1.0)
        for k, v in other.arith.items():
            out.arith[k] += v
        for k, v in other.mem.items():
            out.mem[k] += v
        for k, v in other.atomics.items():
            out.atomics[k] += v
        out.atomic_contention_weight += other.atomic_contention_weight
        out.atomic_contention_weight_local += other.atomic_contention_weight_local
        out.barriers += other.barriers
        out.branches += other.branches
        out.divergent_branches += other.divergent_branches
        out.loop_headers += other.loop_headers
        out.calls += other.calls
        return out


# ---------------------------------------------------------------------------
# traversal
# ---------------------------------------------------------------------------


def _walk(block: Block, mult: float, mix: InstructionMix) -> None:
    for stmt in block:
        m = mult * stmt.count
        if isinstance(stmt, Arith):
            mix.arith[(stmt.op, stmt.dtype.base, stmt.dtype.width, stmt.accumulates)] += m
        elif isinstance(stmt, MemAccess):
            mix.mem[(stmt.kind, stmt.space, stmt.pattern, stmt.dtype.base, stmt.dtype.width, stmt.sequential, stmt.aligned)] += m
        elif isinstance(stmt, Atomic):
            mix.atomics[(stmt.op, stmt.dtype.base, stmt.space)] += m
            if stmt.space == MemSpace.LOCAL:
                mix.atomic_contention_weight_local += m * stmt.contention
            else:
                mix.atomic_contention_weight += m * stmt.contention
        elif isinstance(stmt, Barrier):
            mix.barriers += m
        elif isinstance(stmt, Branch):
            mix.branches += m
            if stmt.divergent:
                mix.divergent_branches += m
            _walk(stmt.body, m * stmt.taken_prob, mix)
            if stmt.orelse is not None:
                _walk(stmt.orelse, m * (1.0 - stmt.taken_prob), mix)
        elif isinstance(stmt, Loop):
            headers = math.ceil(stmt.trip / stmt.unroll) if stmt.static_trip else stmt.trip / stmt.unroll
            mix.loop_headers += m * headers
            _walk(stmt.body, m * stmt.trip, mix)
        elif isinstance(stmt, Call):
            if not stmt.inlined:
                mix.calls += m
            _walk(stmt.body, m, mix)
        else:  # pragma: no cover - exhaustive over Stmt union
            raise TypeError(f"unknown IR statement {stmt!r}")


def analyze(kernel: Kernel) -> InstructionMix:
    """Compute the expected per-work-item instruction mix of a kernel.

    Results are memoized by IR content (kernels are frozen trees);
    callers treat the returned mix as read-only and copy via
    :meth:`InstructionMix.scaled` before mutating.
    """
    return perf.cache("analysis").get_or_compute(kernel, lambda: _analyze_uncached(kernel))


def _analyze_uncached(kernel: Kernel) -> InstructionMix:
    mix = InstructionMix()
    _walk(kernel.body, 1.0, mix)
    return mix


def walk_stmts(block: Block) -> Iterator[Stmt]:
    """Yield every statement in the tree (pre-order)."""
    for stmt in block:
        yield stmt
        if isinstance(stmt, Branch):
            yield from walk_stmts(stmt.body)
            if stmt.orelse is not None:
                yield from walk_stmts(stmt.orelse)
        elif isinstance(stmt, (Loop, Call)):
            yield from walk_stmts(stmt.body)


def any_stmt(block: Block, pred: Callable[[Stmt], bool]) -> bool:
    """True if any statement in the tree satisfies ``pred``."""
    return any(pred(s) for s in walk_stmts(block))


def max_unroll(block: Block) -> int:
    """The largest unroll factor anywhere in the tree."""
    factor = 1
    for s in walk_stmts(block):
        if isinstance(s, Loop):
            factor = max(factor, s.unroll)
    return factor


def max_width(kernel: Kernel) -> int:
    """Largest vector width used by any statement of the kernel."""
    return analyze(kernel).max_vector_width()
