"""Fluent builder for kernel IR.

Benchmark modules construct their kernels through this builder so the
operation mix stays an honest, readable derivation of the algorithm:

>>> from repro.ir import builder, dtypes, nodes
>>> b = builder.KernelBuilder("saxpy")
>>> _ = b.buffer("x", dtypes.F32, const=True, restrict=True)
>>> _ = b.buffer("y", dtypes.F32, restrict=True)
>>> b.load(dtypes.F32, param="x")
>>> b.load(dtypes.F32, param="y")
>>> b.arith(nodes.OpKind.FMA, dtypes.F32)
>>> b.store(dtypes.F32, param="y")
>>> k = b.build(base_live_values=4)
>>> k.name
'saxpy'
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Iterator

from .dtypes import DType
from .nodes import (
    AccessPattern,
    Arith,
    Atomic,
    Barrier,
    Block,
    Branch,
    BufferParam,
    Call,
    Kernel,
    Layout,
    Loop,
    MemAccess,
    MemKind,
    MemSpace,
    OpKind,
    Param,
    ScalarParam,
    Scaling,
    Stmt,
)


@dataclass
class _Frame:
    stmts: list[Stmt] = field(default_factory=list)


class KernelBuilder:
    """Imperative construction of an immutable :class:`Kernel` tree."""

    def __init__(self, name: str):
        self.name = name
        self._params: list[Param] = []
        self._stack: list[_Frame] = [_Frame()]
        self._notes: list[str] = []

    # ------------------------------------------------------------------
    # parameters
    # ------------------------------------------------------------------
    def buffer(
        self,
        name: str,
        dtype: DType,
        space: MemSpace = MemSpace.GLOBAL,
        const: bool = False,
        restrict: bool = False,
        layout: Layout = Layout.FLAT,
        record_fields: int = 1,
    ) -> BufferParam:
        param = BufferParam(
            name=name,
            dtype=dtype,
            space=space,
            is_const=const,
            is_restrict=restrict,
            layout=layout,
            record_fields=record_fields,
        )
        self._params.append(param)
        return param

    def scalar(self, name: str, dtype: DType) -> ScalarParam:
        param = ScalarParam(name, dtype)
        self._params.append(param)
        return param

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------
    def _emit(self, stmt: Stmt) -> None:
        self._stack[-1].stmts.append(stmt)

    def load(
        self,
        dtype: DType,
        pattern: AccessPattern = AccessPattern.UNIT,
        space: MemSpace = MemSpace.GLOBAL,
        count: float = 1.0,
        scaling: Scaling = Scaling.PER_ELEMENT,
        vectorizable: bool = True,
        param: str | None = None,
        sequential: bool = False,
        aligned: bool = True,
    ) -> None:
        self._emit(
            MemAccess(
                MemKind.LOAD, space, dtype, pattern, count, scaling, vectorizable, param,
                sequential, aligned,
            )
        )

    def store(
        self,
        dtype: DType,
        pattern: AccessPattern = AccessPattern.UNIT,
        space: MemSpace = MemSpace.GLOBAL,
        count: float = 1.0,
        scaling: Scaling = Scaling.PER_ELEMENT,
        vectorizable: bool = True,
        param: str | None = None,
        sequential: bool = False,
        aligned: bool = True,
    ) -> None:
        self._emit(
            MemAccess(
                MemKind.STORE, space, dtype, pattern, count, scaling, vectorizable, param,
                sequential, aligned,
            )
        )

    def arith(
        self,
        op: OpKind,
        dtype: DType,
        count: float = 1.0,
        scaling: Scaling = Scaling.PER_ELEMENT,
        vectorizable: bool = True,
        accumulates: bool = False,
    ) -> None:
        self._emit(Arith(op, dtype, count, scaling, vectorizable, accumulates))

    def int_ops(self, count: float, dtype: DType | None = None, scaling: Scaling = Scaling.PER_ITEM) -> None:
        """Address/index arithmetic (not vectorizable, integer)."""
        self._emit(Arith(OpKind.ADD, dtype or DType("i32"), count, scaling, vectorizable=False))

    def atomic(
        self,
        op: OpKind,
        dtype: DType,
        count: float = 1.0,
        contention: float = 0.01,
        scaling: Scaling = Scaling.PER_ELEMENT,
        space: MemSpace = MemSpace.GLOBAL,
    ) -> None:
        self._emit(Atomic(op, dtype, count, scaling, contention, space))

    def barrier(self, count: float = 1.0) -> None:
        self._emit(Barrier(count=count))

    # ------------------------------------------------------------------
    # structured statements (context managers)
    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def loop(
        self,
        trip: float,
        count: float = 1.0,
        scaling: Scaling = Scaling.PER_ELEMENT,
        vectorizable: bool = True,
        static_trip: bool = True,
    ) -> Iterator[None]:
        self._stack.append(_Frame())
        try:
            yield
        finally:
            frame = self._stack.pop()
            self._emit(
                Loop(
                    trip=trip,
                    body=Block(tuple(frame.stmts)),
                    count=count,
                    scaling=scaling,
                    vectorizable=vectorizable,
                    static_trip=static_trip,
                )
            )

    @contextlib.contextmanager
    def branch(
        self,
        taken_prob: float,
        count: float = 1.0,
        divergent: bool = False,
        scaling: Scaling = Scaling.PER_ELEMENT,
    ) -> Iterator[None]:
        self._stack.append(_Frame())
        try:
            yield
        finally:
            frame = self._stack.pop()
            self._emit(
                Branch(
                    taken_prob=taken_prob,
                    body=Block(tuple(frame.stmts)),
                    count=count,
                    scaling=scaling,
                    divergent=divergent,
                )
            )

    @contextlib.contextmanager
    def call(self, name: str, count: float = 1.0, inlined: bool = False) -> Iterator[None]:
        self._stack.append(_Frame())
        try:
            yield
        finally:
            frame = self._stack.pop()
            self._emit(Call(name=name, body=Block(tuple(frame.stmts)), inlined=inlined, count=count))

    # ------------------------------------------------------------------
    def note(self, text: str) -> None:
        self._notes.append(text)

    def build(self, elems_per_item: int = 1, base_live_values: float = 8.0) -> Kernel:
        if len(self._stack) != 1:
            raise RuntimeError("unclosed loop/branch/call context in KernelBuilder")
        return Kernel(
            name=self.name,
            params=tuple(self._params),
            body=Block(tuple(self._stack[0].stmts)),
            elems_per_item=elems_per_item,
            base_live_values=base_live_values,
            notes=tuple(self._notes),
        )
