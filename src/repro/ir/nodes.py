"""Structured kernel IR.

A :class:`Kernel` describes the work performed by **one work-item** of an
OpenCL NDRange (or one loop iteration of the serial/OpenMP CPU versions —
the CPU backends lower the same IR).  The tree is immutable; compiler
passes rewrite it functionally.

Semantics
---------

Every work-item processes ``Kernel.elems_per_item`` logical *elements* of
the problem (1 before vectorization; the vectorizer multiplies it).  Each
statement carries a ``count`` — how many times it executes per work-item
*per element* (``Scaling.PER_ELEMENT``) or per work-item regardless of
element count (``Scaling.PER_ITEM``).  Counts may be fractional: they are
*expected* counts for data-dependent control flow (e.g. the average
number of non-zeros per row in spmv).

The IR is deliberately an *operation-mix* representation rather than a
full dataflow program: the functional semantics of every benchmark are
implemented separately in NumPy (and validated by tests), while the IR is
what the architecture models price.  This mirrors how analytical GPU
models (roofline + occupancy) are built, and keeps every optimization's
effect mechanistic: vectorization changes widths and the NDRange, loop
unrolling changes loop-overhead counts and live registers, AOS→SOA
changes access patterns, and so on.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field, replace
from typing import Iterator, Union

from .dtypes import DType


class AccessPattern(enum.Enum):
    """Spatial pattern of a memory access stream, as seen by DRAM.

    The efficiency each pattern achieves on the Exynos 5250 memory
    controller is owned by :mod:`repro.memory.patterns`.
    """

    #: consecutive work-items touch consecutive addresses (coalesced)
    UNIT = "unit"
    #: constant stride > 1 element (e.g. AOS field access, matrix column)
    STRIDED = "strided"
    #: data-dependent scatter/gather (e.g. spmv column indices)
    GATHER = "gather"
    #: all work-items read the same address (broadcast-friendly)
    BROADCAST = "broadcast"
    #: atomic read-modify-write traffic
    ATOMIC = "atomic"


class MemSpace(enum.Enum):
    """OpenCL address spaces.

    On Mali, ``LOCAL`` and ``GLOBAL`` are the same physical memory — the
    timing model prices them identically, reproducing the paper's point
    that local-memory tiling buys nothing on this architecture.
    """

    GLOBAL = "global"
    CONSTANT = "constant"
    LOCAL = "local"
    PRIVATE = "private"


class Scaling(enum.Enum):
    """Whether a statement's count scales with elements per work-item."""

    PER_ELEMENT = "per_element"
    PER_ITEM = "per_item"


class OpKind(enum.Enum):
    """Arithmetic/logic operation classes with distinct hardware costs."""

    ADD = "add"
    MUL = "mul"
    FMA = "fma"          # fused multiply-add: 2 flops, 1 issue slot
    DIV = "div"
    SQRT = "sqrt"
    RSQRT = "rsqrt"
    EXP = "exp"
    LOG = "log"
    SIN = "sin"
    CMP = "cmp"
    BITOP = "bitop"
    MOV = "mov"
    CVT = "cvt"          # type conversion


#: flops contributed per scalar lane by each op kind (integer ops count 0)
FLOPS_PER_OP: dict[OpKind, int] = {
    OpKind.ADD: 1,
    OpKind.MUL: 1,
    OpKind.FMA: 2,
    OpKind.DIV: 1,
    OpKind.SQRT: 1,
    OpKind.RSQRT: 1,
    OpKind.EXP: 1,
    OpKind.LOG: 1,
    OpKind.SIN: 1,
    OpKind.CMP: 0,
    OpKind.BITOP: 0,
    OpKind.MOV: 0,
    OpKind.CVT: 0,
}


class MemKind(enum.Enum):
    """Direction of a memory access."""

    LOAD = "load"
    STORE = "store"


# ---------------------------------------------------------------------------
# statement nodes
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Arith:
    """``count`` arithmetic operations of ``op`` on values of ``dtype``.

    ``vectorizable`` marks whether the vectorizer may widen this
    statement (index arithmetic and horizontal reductions are not).

    ``accumulates`` marks a loop-carried floating-point dependency (a
    running sum / dot product).  The paper compiled without
    ``-funsafe-math-optimizations``, so GCC may not reassociate FP
    reductions: on the in-order VFP these chains execute at the unit's
    *latency*, one per several cycles — a large, real handicap of the
    Serial baselines.  The GPU hides the same latency by interleaving
    other work-items, so the flag only affects the CPU model.
    """

    op: OpKind
    dtype: DType
    count: float = 1.0
    scaling: Scaling = Scaling.PER_ELEMENT
    vectorizable: bool = True
    accumulates: bool = False

    def widened(self, width: int) -> "Arith":
        return replace(self, dtype=self.dtype.with_width(width))


@dataclass(frozen=True, slots=True)
class MemAccess:
    """``count`` loads or stores of ``dtype`` values from ``space``."""

    kind: MemKind
    space: MemSpace
    dtype: DType
    pattern: AccessPattern = AccessPattern.UNIT
    count: float = 1.0
    scaling: Scaling = Scaling.PER_ELEMENT
    vectorizable: bool = True
    #: name of the kernel parameter this stream belongs to (aliasing info)
    param: str | None = None
    #: True when the *same work-item* walks consecutive addresses (a
    #: per-thread streaming loop): every cache line is fully consumed by
    #: one thread, so narrow accesses do not waste DRAM bursts — only
    #: LS-pipe issue slots.  False for one-shot accesses whose burst
    #: utilization depends on the access width (the Mali coalescing gap).
    sequential: bool = False
    #: False for sliding-window vector loads at arbitrary offsets: an
    #: unaligned vload crosses register/line boundaries and costs two
    #: LS issues on Midgard
    aligned: bool = True

    def widened(self, width: int) -> "MemAccess":
        return replace(self, dtype=self.dtype.with_width(width))

    @property
    def bytes_per_exec(self) -> float:
        return float(self.dtype.bytes)


@dataclass(frozen=True, slots=True)
class Atomic:
    """An atomic read-modify-write.

    ``contention`` in [0, 1]: expected fraction of concurrently executing
    work-items hitting the *same* address (1.0 = full serialization, as
    in a single-bucket histogram; ~1/n_buckets for a uniform histogram).

    ``space`` matters on Mali even though local and global memory are
    the same DRAM: a *local* atomic only synchronizes within one shader
    core and resolves near the core, while a *global* atomic round-trips
    through the coherent L2 — several times more expensive.  This cost
    gap is why the paper's privatized histogram wins.
    """

    op: OpKind
    dtype: DType
    count: float = 1.0
    scaling: Scaling = Scaling.PER_ELEMENT
    contention: float = 0.01
    space: MemSpace = MemSpace.GLOBAL


@dataclass(frozen=True, slots=True)
class Barrier:
    """A work-group barrier."""

    count: float = 1.0
    scaling: Scaling = Scaling.PER_ITEM


@dataclass(frozen=True, slots=True)
class Branch:
    """A conditional with expected taken probability.

    Mali schedules single work-items so divergence is free (the paper's
    "Thread Divergence" point); the CPU model charges misprediction.
    """

    taken_prob: float
    body: "Block"
    orelse: "Block | None" = None
    count: float = 1.0
    scaling: Scaling = Scaling.PER_ELEMENT
    #: True when neighbouring work-items likely disagree on direction
    divergent: bool = False


@dataclass(frozen=True, slots=True)
class Loop:
    """A counted loop executing ``body`` ``trip`` times.

    ``trip`` may be fractional (expected trip count).  ``unroll`` > 1
    means the body shown executes ``trip/unroll`` times with the loop
    overhead charged once per unrolled iteration; the unroll pass also
    materializes a remainder epilogue when trips don't divide evenly.
    """

    trip: float
    body: "Block"
    unroll: int = 1
    count: float = 1.0
    scaling: Scaling = Scaling.PER_ELEMENT
    #: can the unroller/vectorizer touch this loop?
    vectorizable: bool = True
    #: True if trip count is known at compile time (no remainder guard cost)
    static_trip: bool = True


@dataclass(frozen=True, slots=True)
class Call:
    """A (possibly inlined) helper-function call."""

    name: str
    body: "Block"
    inlined: bool = False
    count: float = 1.0
    scaling: Scaling = Scaling.PER_ELEMENT


Stmt = Union[Arith, MemAccess, Atomic, Barrier, Branch, Loop, Call]


@dataclass(frozen=True, slots=True)
class Block:
    """An ordered sequence of statements."""

    stmts: tuple[Stmt, ...] = ()

    def __iter__(self) -> Iterator[Stmt]:
        return iter(self.stmts)

    def __len__(self) -> int:
        return len(self.stmts)

    def with_stmts(self, stmts: tuple[Stmt, ...]) -> "Block":
        return Block(stmts)


# ---------------------------------------------------------------------------
# kernel parameters & kernel
# ---------------------------------------------------------------------------


class Layout(enum.Enum):
    """Data layout of a buffer of records (the AOS→SOA optimization)."""

    AOS = "aos"
    SOA = "soa"
    FLAT = "flat"   # plain 1-D array of scalars; layout transform is a no-op


@dataclass(frozen=True, slots=True)
class BufferParam:
    """A ``__global``/``__constant`` pointer argument of the kernel."""

    name: str
    dtype: DType
    space: MemSpace = MemSpace.GLOBAL
    is_const: bool = False
    is_restrict: bool = False
    layout: Layout = Layout.FLAT
    #: number of scalar fields per record when layout is AOS/SOA
    record_fields: int = 1


@dataclass(frozen=True, slots=True)
class ScalarParam:
    """A by-value scalar argument."""

    name: str
    dtype: DType


Param = Union[BufferParam, ScalarParam]


@dataclass(frozen=True, slots=True)
class Kernel:
    """A complete kernel: parameters, body, and compile-relevant metadata.

    Attributes:
        elems_per_item: logical problem elements each work-item handles
            (the vectorizer multiplies this and the launcher divides the
            NDRange accordingly).
        base_live_values: estimated simultaneously-live virtual values in
            the scalar kernel; the register allocator scales this with
            vector width and unrolling.
        uses_fp64: any f64 arithmetic (drives driver quirk checks).
    """

    name: str
    params: tuple[Param, ...]
    body: Block
    elems_per_item: int = 1
    base_live_values: float = 8.0
    notes: tuple[str, ...] = ()

    def with_body(self, body: Block) -> "Kernel":
        return replace(self, body=body)

    def with_elems_per_item(self, n: int) -> "Kernel":
        return replace(self, elems_per_item=n)

    @property
    def uses_fp64(self) -> bool:
        from .analysis import any_stmt  # local import to avoid cycle

        return any_stmt(
            self.body,
            lambda s: isinstance(s, (Arith, MemAccess, Atomic))
            and s.dtype.is_float
            and s.dtype.scalar_bits == 64,
        )

    def buffer_params(self) -> tuple[BufferParam, ...]:
        return tuple(p for p in self.params if isinstance(p, BufferParam))

    def param(self, name: str) -> Param:
        for p in self.params:
            if p.name == name:
                return p
        raise KeyError(f"kernel {self.name!r} has no parameter {name!r}")


def total_trip(loop: Loop) -> float:
    """Effective body executions of a loop accounting for unrolling."""
    return loop.trip


def unrolled_iterations(loop: Loop) -> float:
    """Number of (unrolled) iterations the loop header executes."""
    return math.ceil(loop.trip / loop.unroll) if loop.static_trip else loop.trip / loop.unroll
