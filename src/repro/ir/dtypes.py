"""Scalar and vector data types for the kernel IR.

OpenCL C exposes scalar types (``float``, ``double``, ``int`` ...) and
vector types of width 2, 3, 4, 8 and 16 (``float4``, ``double8`` ...).
The Mali-T604's arithmetic pipes operate on 128-bit registers, so the
relationship between a value's *bit width* and the native 128-bit lane
is what the timing model prices.  We model widths {1, 2, 4, 8, 16};
width-3 vectors are padded to 4 by the real compiler and are treated as
width 4 by :func:`normalize_width`.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

#: Vector widths accepted by the IR (width 3 normalizes to 4).
VECTOR_WIDTHS: tuple[int, ...] = (1, 2, 4, 8, 16)

#: Native register width of the Mali-T604 arithmetic pipes, in bits.
NATIVE_REGISTER_BITS: int = 128

_SCALAR_BITS: dict[str, int] = {
    "f16": 16,
    "f32": 32,
    "f64": 64,
    "i8": 8,
    "i16": 16,
    "i32": 32,
    "i64": 64,
    "u8": 8,
    "u16": 16,
    "u32": 32,
    "u64": 64,
    "bool": 8,
}

_FLOAT_BASES = frozenset({"f16", "f32", "f64"})


def scalar_bits(base: str) -> int:
    """Bit width of a scalar base type name (``"f32"`` → 32)."""
    try:
        return _SCALAR_BITS[base]
    except KeyError:
        raise ValueError(f"unknown base type {base!r}") from None


def normalize_width(width: int) -> int:
    """Round an OpenCL vector width to a modelled width.

    Width 3 is stored as 4 by every OpenCL implementation (including
    Mali's); any other unsupported width is an error.
    """
    if width == 3:
        return 4
    if width not in VECTOR_WIDTHS:
        raise ValueError(f"unsupported vector width {width!r}; expected one of {VECTOR_WIDTHS} (or 3)")
    return width


@dataclass(frozen=True, slots=True)
class DType:
    """A scalar or vector data type, e.g. ``f32x4`` for ``float4``.

    Attributes:
        base: scalar base type name (``"f32"``, ``"f64"``, ``"i32"`` ...).
        width: vector width; 1 means scalar.
    """

    base: str
    width: int = 1

    def __post_init__(self) -> None:
        if self.base not in _SCALAR_BITS:
            raise ValueError(f"unknown base type {self.base!r}")
        object.__setattr__(self, "width", normalize_width(self.width))

    # ------------------------------------------------------------------
    # basic metrics
    # ------------------------------------------------------------------
    @property
    def scalar_bits(self) -> int:
        """Bits of one element."""
        return _SCALAR_BITS[self.base]

    @property
    def bits(self) -> int:
        """Total bits of the (possibly vector) value."""
        return self.scalar_bits * self.width

    @property
    def bytes(self) -> int:
        """Total bytes of the value."""
        return self.bits // 8

    @property
    def scalar_bytes(self) -> int:
        """Bytes of one element."""
        return self.scalar_bits // 8

    @property
    def is_float(self) -> bool:
        return self.base in _FLOAT_BASES

    @property
    def is_integer(self) -> bool:
        return not self.is_float and self.base != "bool"

    @property
    def is_vector(self) -> bool:
        return self.width > 1

    @property
    def registers_128(self) -> float:
        """Number of 128-bit registers this value occupies (>= 0.25)."""
        return max(self.bits / NATIVE_REGISTER_BITS, 0.25)

    # ------------------------------------------------------------------
    # derivation helpers (used heavily by compiler passes)
    # ------------------------------------------------------------------
    def with_width(self, width: int) -> "DType":
        """Return the same base type at a different vector width."""
        return DType(self.base, normalize_width(width))

    @property
    def scalar(self) -> "DType":
        """The width-1 version of this type."""
        return self if self.width == 1 else DType(self.base, 1)

    def lanes_per_register(self) -> int:
        """How many elements of this base type fit one 128-bit register."""
        return max(NATIVE_REGISTER_BITS // self.scalar_bits, 1)

    # ------------------------------------------------------------------
    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.base if self.width == 1 else f"{self.base}x{self.width}"


@lru_cache(maxsize=None)
def dtype(spec: str) -> DType:
    """Parse ``"f32"``, ``"f32x4"``, or OpenCL-style ``"float4"`` specs."""
    ocl_names = {
        "float": "f32",
        "double": "f64",
        "half": "f16",
        "int": "i32",
        "uint": "u32",
        "long": "i64",
        "ulong": "u64",
        "char": "i8",
        "uchar": "u8",
        "short": "i16",
        "ushort": "u16",
    }
    for name, base in ocl_names.items():
        if spec == name:
            return DType(base, 1)
        if spec.startswith(name) and spec[len(name):].isdigit():
            return DType(base, int(spec[len(name):]))
    if "x" in spec:
        base, _, w = spec.partition("x")
        return DType(base, int(w))
    return DType(spec, 1)


# Convenient singletons -------------------------------------------------
F16 = DType("f16")
F32 = DType("f32")
F64 = DType("f64")
I32 = DType("i32")
I64 = DType("i64")
U32 = DType("u32")
U64 = DType("u64")
BOOL = DType("bool")


def float_type(double_precision: bool) -> DType:
    """The working floating-point scalar type for a precision setting."""
    return F64 if double_precision else F32
