"""Analytical cache model for the Exynos 5250 on-chip hierarchy.

We price caches with a working-set model rather than a trace simulator:
each kernel declares, per buffer *stream*, its footprint (distinct bytes
touched) and reuse (average touches per byte).  For an LRU cache of
capacity ``C`` and a stream of working set ``W``:

* every byte misses once (compulsory),
* reuse touches hit with probability ≈ the resident fraction
  ``min(C_share / W, 1)``, where ``C_share`` is the stream's share of
  capacity when several streams compete.

This reproduces the behaviours the paper's benchmarks depend on —
``dmmm`` blocking keeps its tiles L2-resident, ``vecop`` streams straight
through, ``2dcon``/``3dstc`` neighbourhoods hit in cache — without
simulating addresses.  Burst/row-buffer effects are *not* modelled here;
they belong to :class:`repro.memory.patterns.PatternEfficiency` (the two
compose: the cache decides how many bytes reach DRAM, the pattern table
decides how fast DRAM moves them).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import CalibrationError
from ..ir.nodes import AccessPattern


@dataclass(frozen=True)
class StreamSpec:
    """One buffer's traffic as seen by the cache hierarchy.

    Attributes:
        name: buffer/stream identifier (matches ``MemAccess.param``).
        footprint_bytes: distinct bytes the kernel touches in the buffer.
        touches_per_byte: average times each byte is requested (>= 1).
        pattern: spatial pattern (forwarded to the DRAM model).
        reuse_window_bytes: span of data between successive touches of
            the same byte.  A stencil re-touches a pixel within a few
            rows; a naive matrix-column walk re-touches only after the
            whole matrix.  ``None`` means the full footprint (the
            pessimistic default).
    """

    name: str
    footprint_bytes: float
    touches_per_byte: float = 1.0
    pattern: AccessPattern = AccessPattern.UNIT
    reuse_window_bytes: float | None = None
    #: bytes per individual access (element size); data-dependent
    #: gathers that miss pull a whole cache line per element, so their
    #: miss traffic is amplified by line/access_bytes
    access_bytes: float = 4.0

    def __post_init__(self) -> None:
        if self.footprint_bytes < 0:
            raise ValueError(f"stream {self.name!r}: negative footprint")
        if self.touches_per_byte < 1.0:
            raise ValueError(f"stream {self.name!r}: touches_per_byte must be >= 1")
        if self.reuse_window_bytes is not None and self.reuse_window_bytes < 0:
            raise ValueError(f"stream {self.name!r}: negative reuse window")

    @property
    def window(self) -> float:
        """Effective reuse distance (defaults to the footprint)."""
        if self.reuse_window_bytes is None:
            return self.footprint_bytes
        return min(self.reuse_window_bytes, self.footprint_bytes)

    @property
    def requested_bytes(self) -> float:
        return self.footprint_bytes * self.touches_per_byte


@dataclass(frozen=True)
class CacheConfig:
    """One cache level."""

    size_bytes: int
    line_bytes: int = 64

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.line_bytes <= 0:
            raise CalibrationError("cache sizes must be positive")


class CacheModel:
    """Working-set hit/miss estimation for one cache level."""

    def __init__(self, config: CacheConfig):
        self.config = config

    def shares(self, streams: list[StreamSpec]) -> dict[str, float]:
        """LRU steady-state capacity shares for competing streams.

        LRU keeps what is touched often: capacity is assigned in
        proportion to each stream's *request volume*, but a stream never
        needs more than its reuse window — excess is redistributed to
        the still-hungry streams.  This keeps small hot structures
        (histogram bins, convolution filters) resident regardless of how
        much bulk data streams past them, which is what real LRU does.
        """
        size = float(self.config.size_bytes)
        total_req = sum(s.requested_bytes for s in streams)
        if total_req <= 0.0:
            return {s.name: size for s in streams}
        share = {s.name: size * s.requested_bytes / total_req for s in streams}
        # redistribute excess above each stream's window (two passes
        # cover the common cases; the loop converges monotonically)
        for _ in range(4):
            excess = 0.0
            hungry: list[StreamSpec] = []
            hungry_req = 0.0
            for s in streams:
                if share[s.name] > s.window:
                    excess += share[s.name] - s.window
                    share[s.name] = s.window
                elif share[s.name] < s.window:
                    hungry.append(s)
                    hungry_req += s.requested_bytes
            if excess <= 0.0 or not hungry:
                break
            for s in hungry:
                share[s.name] += excess * (s.requested_bytes / hungry_req)
        return share

    def resident_fraction(self, stream: StreamSpec, share_bytes: float | None = None) -> float:
        """Probability a re-touch of the stream finds its byte resident.

        The byte survives if the stream's capacity share covers its
        *reuse window* — the data touched between successive uses.
        """
        if stream.footprint_bytes <= 0.0 or stream.window <= 0.0:
            return 1.0
        share = self.config.size_bytes if share_bytes is None else share_bytes
        return min(share / stream.window, 1.0)

    def miss_bytes(self, stream: StreamSpec, share_bytes: float | None = None) -> float:
        """Bytes of the stream that go to the next level."""
        if stream.requested_bytes <= 0.0:
            return 0.0
        resident = self.resident_fraction(stream, share_bytes)
        compulsory = stream.footprint_bytes
        reuse_requests = stream.requested_bytes - stream.footprint_bytes
        reuse_misses = reuse_requests * (1.0 - resident)
        return compulsory + reuse_misses

    def hit_fraction(self, stream: StreamSpec, share_bytes: float | None = None) -> float:
        """Fraction of requested bytes served by this level."""
        if stream.requested_bytes <= 0.0:
            return 1.0
        return 1.0 - self.miss_bytes(stream, share_bytes) / stream.requested_bytes


class CacheHierarchy:
    """L1 + shared L2 feeding DRAM.

    ``dram_traffic`` reduces a set of streams to per-pattern DRAM byte
    counts; the device models hand those to :class:`~repro.memory.dram.
    DramModel`.  L1 filtering only matters for the CPU's cycle cost (the
    GPU's per-core L1s are tiny and bypassed for streaming); DRAM traffic
    is governed by the last-level cache.
    """

    def __init__(self, l1: CacheConfig, l2: CacheConfig):
        self.l1 = CacheModel(l1)
        self.l2 = CacheModel(l2)

    def dram_traffic(self, streams: list[StreamSpec]) -> dict[AccessPattern, float]:
        """Per-pattern bytes that reach DRAM after L2 filtering.

        Gather streams amplify their *reuse* misses by the line size: a
        randomly-addressed element that misses pulls a whole cache line
        of which only ``access_bytes`` are used before eviction.
        Compulsory traffic is not amplified (every byte of the footprint
        is eventually consumed).
        """
        out: dict[AccessPattern, float] = {}
        shares = self.l2.shares(streams)
        for s in streams:
            missed = self.l2.miss_bytes(s, share_bytes=shares[s.name])
            if missed <= 0.0:
                continue
            if s.pattern == AccessPattern.GATHER:
                reuse_miss = max(missed - s.footprint_bytes, 0.0)
                amp = min(self.l2.config.line_bytes / max(s.access_bytes, 1.0), 16.0)
                missed = min(s.footprint_bytes, missed) + reuse_miss * amp
            out[s.pattern] = out.get(s.pattern, 0.0) + missed
        return out

    def l1_hit_fraction(self, streams: list[StreamSpec]) -> float:
        """Request-weighted L1 hit fraction across streams (CPU cost)."""
        requested = sum(s.requested_bytes for s in streams)
        if requested <= 0.0:
            return 1.0
        shares = self.l1.shares(streams)
        hits = sum(
            s.requested_bytes * self.l1.hit_fraction(s, share_bytes=shares[s.name])
            for s in streams
        )
        return hits / requested
