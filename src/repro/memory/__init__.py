"""Exynos 5250 memory-system models: caches, DRAM, access patterns."""

from .cache import CacheConfig, CacheHierarchy, CacheModel, StreamSpec
from .dram import DramConfig, DramModel
from .patterns import PatternEfficiency, dram_traffic_bytes, effective_bandwidth_fraction

__all__ = [
    "CacheConfig",
    "CacheHierarchy",
    "CacheModel",
    "DramConfig",
    "DramModel",
    "PatternEfficiency",
    "StreamSpec",
    "dram_traffic_bytes",
    "effective_bandwidth_fraction",
]
