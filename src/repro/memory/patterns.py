"""Access-pattern efficiency model for the Exynos 5250 memory system.

A DDR3 controller reaches its peak bandwidth only for long unit-stride
bursts.  Strided streams waste part of each 64-byte DRAM burst, gathers
waste most of it, and atomics serialize at the coherence point.  The
per-pattern *efficiency* is the fraction of peak DRAM bandwidth a pure
stream of that pattern can sustain; mixed streams compose by
byte-weighted harmonic mean (time adds, not bandwidth).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.nodes import AccessPattern


@dataclass(frozen=True)
class PatternEfficiency:
    """Sustainable fraction of peak DRAM bandwidth per access pattern.

    Defaults are typical of LPDDR3/DDR3L-1600 with a 64-byte burst:
    unit-stride streams reach ~80 % of peak; element-strided streams
    use one element per burst in the worst case but caching of adjacent
    lines pulls the average up; gathers are dominated by row misses;
    broadcast hits cache after the first touch; atomic RMW traffic
    bounces through the coherent L2.
    """

    unit: float = 0.80
    strided: float = 0.35
    # gather *miss traffic* is already line-amplified by the cache
    # model, so the per-line burst efficiency is moderate
    gather: float = 0.60
    broadcast: float = 4.0  # effective amplification: mostly cache hits
    atomic: float = 0.30

    def factor(self, pattern: AccessPattern) -> float:
        return {
            AccessPattern.UNIT: self.unit,
            AccessPattern.STRIDED: self.strided,
            AccessPattern.GATHER: self.gather,
            AccessPattern.BROADCAST: self.broadcast,
            AccessPattern.ATOMIC: self.atomic,
        }[pattern]


def effective_bandwidth_fraction(
    bytes_by_pattern: dict[AccessPattern, float],
    eff: PatternEfficiency,
) -> float:
    """Byte-weighted harmonic mean efficiency of a mixed access stream.

    Transfer *times* add: ``t = Σ bytes_p / (peak · eff_p)``, so the
    blended efficiency is ``Σ bytes / Σ (bytes_p / eff_p)``.

    Returns 1.0 for an empty stream (no memory time at all).
    """
    total = sum(bytes_by_pattern.values())
    if total <= 0.0:
        return 1.0
    denom = sum(b / eff.factor(p) for p, b in bytes_by_pattern.items() if b > 0.0)
    return total / denom


def dram_traffic_bytes(
    bytes_by_pattern: dict[AccessPattern, float],
    hit_fraction_by_pattern: dict[AccessPattern, float] | None = None,
) -> dict[AccessPattern, float]:
    """Filter a request stream through cache hit fractions.

    ``hit_fraction_by_pattern`` gives, per pattern, the fraction of the
    requested bytes served by the on-chip caches and therefore *not*
    presented to DRAM.  Patterns absent from the dict default to 0 hits.
    """
    hits = hit_fraction_by_pattern or {}
    out: dict[AccessPattern, float] = {}
    for pattern, nbytes in bytes_by_pattern.items():
        miss = 1.0 - min(max(hits.get(pattern, 0.0), 0.0), 1.0)
        if nbytes * miss > 0.0:
            out[pattern] = nbytes * miss
    return out
