"""DRAM bandwidth model for the Arndale board's DDR3L-1600 memory.

The Exynos 5250 has a 2×32-bit LPDDR3/DDR3L interface at 800 MHz DDR —
12.8 GB/s theoretical peak — shared by the Cortex-A15 cluster and the
Mali-T604.  A single in-order A15 core cannot generate enough outstanding
misses to saturate it; the GPU, with many threads in flight, gets much
closer.  :class:`DramModel` captures peak bandwidth, per-agent request
caps and multi-agent contention.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import CalibrationError
from ..ir.nodes import AccessPattern
from .patterns import PatternEfficiency, effective_bandwidth_fraction


@dataclass(frozen=True)
class DramConfig:
    """Calibrated DRAM parameters (see ``repro.calibration.exynos5250``)."""

    #: theoretical peak bandwidth, bytes/second
    peak_bandwidth: float = 12.8e9
    #: per-agent sustainable caps (limited by outstanding-miss capacity)
    cpu_single_core_cap: float = 4.0e9
    cpu_dual_core_cap: float = 5.6e9
    gpu_cap: float = 7.8e9
    #: efficiency table for access patterns
    efficiency: PatternEfficiency = PatternEfficiency()
    #: bandwidth lost per additional active agent (banking conflicts)
    contention_penalty: float = 0.12

    def __post_init__(self) -> None:
        if self.peak_bandwidth <= 0:
            raise CalibrationError("peak_bandwidth must be positive")
        for cap in (self.cpu_single_core_cap, self.cpu_dual_core_cap, self.gpu_cap):
            if not 0 < cap <= self.peak_bandwidth:
                raise CalibrationError("agent caps must be in (0, peak_bandwidth]")


class DramModel:
    """Prices byte streams into transfer seconds."""

    def __init__(self, config: DramConfig | None = None):
        self.config = config or DramConfig()

    # ------------------------------------------------------------------
    def agent_cap(self, agent: str) -> float:
        """Sustainable request bandwidth for an agent before patterns."""
        caps = {
            "cpu1": self.config.cpu_single_core_cap,
            "cpu2": self.config.cpu_dual_core_cap,
            "gpu": self.config.gpu_cap,
        }
        try:
            return caps[agent]
        except KeyError:
            raise ValueError(f"unknown DRAM agent {agent!r}; expected one of {sorted(caps)}") from None

    def effective_bandwidth(
        self,
        agent: str,
        *,
        bytes_by_pattern: dict[AccessPattern, float],
        concurrent_agents: int = 1,
    ) -> float:
        """Achievable bytes/second for this stream mix from this agent.

        Everything past ``agent`` is keyword-only (the ``run_version``
        convention): a positional byte dict next to a positional agent
        count has silently transposed arguments before.
        """
        frac = effective_bandwidth_fraction(bytes_by_pattern, self.config.efficiency)
        cap = self.agent_cap(agent)
        contention = max(1.0 - self.config.contention_penalty * (concurrent_agents - 1), 0.25)
        return min(cap, self.config.peak_bandwidth) * min(frac, 1.0) * contention

    def transfer_seconds(
        self,
        agent: str,
        *,
        bytes_by_pattern: dict[AccessPattern, float],
        concurrent_agents: int = 1,
    ) -> float:
        """Seconds to move the given byte mix through DRAM (keyword-only)."""
        total = sum(bytes_by_pattern.values())
        if total <= 0.0:
            return 0.0
        bw = self.effective_bandwidth(
            agent, bytes_by_pattern=bytes_by_pattern, concurrent_agents=concurrent_agents
        )
        return total / bw

    def achieved_fraction_of_peak(
        self, agent: str, bytes_by_pattern: dict[AccessPattern, float]
    ) -> float:
        """Diagnostic: achieved bandwidth / theoretical peak."""
        bw = self.effective_bandwidth(agent, bytes_by_pattern=bytes_by_pattern)
        return bw / self.config.peak_bandwidth


class DramPricingModel:
    """Batched :class:`~repro.pricing.PricingModel` over transfer cells.

    Cells are grouped by (agent, concurrent_agents, pattern tuple) so each
    group prices as one vectorized pass.  Bitwise contract: the pattern
    columns accumulate sequentially in each cell's dict order (matching
    ``sum()`` / the generator in ``effective_bandwidth_fraction``), and a
    pattern with ``bytes <= 0`` contributes an exact ``0.0`` term — adding
    ``0.0`` to a non-negative partial sum is IEEE-identical to skipping
    it — so every lane reproduces ``transfer_seconds`` bit for bit.
    """

    def __init__(self, model: DramModel):
        self.model = model

    def price(self, cells) -> tuple[float, ...]:
        """Transfer seconds for each :class:`~repro.pricing.TransferCell`."""
        import numpy as np

        cells = tuple(cells)
        out: list[float | None] = [None] * len(cells)
        groups: dict[tuple, list[int]] = {}
        for i, cell in enumerate(cells):
            gk = (cell.agent, cell.concurrent_agents, tuple(cell.bytes_by_pattern))
            groups.setdefault(gk, []).append(i)
        cfg = self.model.config
        for (agent, agents, patterns), idxs in groups.items():
            cols = np.asarray(
                [[cells[i].bytes_by_pattern[p] for i in idxs] for p in patterns],
                dtype=np.float64,
            )
            total = np.zeros(len(idxs))
            for row in cols:
                total += row
            denom = np.zeros(len(idxs))
            for pattern, row in zip(patterns, cols):
                factor = cfg.efficiency.factor(pattern)
                denom += np.where(row > 0.0, row / factor, 0.0)
            cap = self.model.agent_cap(agent)
            contention = max(1.0 - cfg.contention_penalty * (agents - 1), 0.25)
            with np.errstate(divide="ignore", invalid="ignore"):
                frac = total / denom
                bw = (min(cap, cfg.peak_bandwidth) * np.minimum(frac, 1.0)) * contention
                seconds = np.where(total <= 0.0, 0.0, total / bw)
            for j, i in enumerate(idxs):
                out[i] = float(seconds[j])
        return tuple(out)  # type: ignore[arg-type]

    def price_one(self, cell) -> float:
        """Scalar-path convenience: one cell through ``transfer_seconds``."""
        return self.model.transfer_seconds(
            cell.agent,
            bytes_by_pattern=dict(cell.bytes_by_pattern),
            concurrent_agents=cell.concurrent_agents,
        )
