"""What-if studies: the paper's forward-looking claims, quantified.

The conclusion argues embedded GPUs are "promising candidates for next
generation HPC systems", and §V-A notes the amcd FP64 compiler defect
"will be corrected in a future version of the compiler".  This module
builds the counterfactual platforms and runs them:

* :func:`mali_t628_platform` / :func:`mali_t760_platform` — the next
  Midgard generations (more shader cores, higher clocks, LPDDR3
  bandwidth growth), calibrated from their public specs relative to the
  T604;
* :func:`fixed_driver_platform` — the same SoC with the FP64 defect
  fixed, which finally yields the double-precision amcd numbers the
  paper could not print;
* :func:`compare_platforms` — per-benchmark Opt runs across variants;
* :func:`estimate_speedups` — the model-only variant: prices each
  platform through its ``pricing_model()`` without functional runs,
  the cheap currency of wide design-space sweeps.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from .benchmarks.base import Precision, RunResult, Version, run_version
from .benchmarks.registry import create
from .calibration.exynos5250 import ExynosPlatform, default_platform
from .memory.dram import DramConfig


def _scaled_dram(base: DramConfig, factor: float) -> DramConfig:
    return dataclasses.replace(
        base,
        peak_bandwidth=base.peak_bandwidth * factor,
        cpu_single_core_cap=base.cpu_single_core_cap * factor,
        cpu_dual_core_cap=base.cpu_dual_core_cap * factor,
        gpu_cap=base.gpu_cap * factor,
    )


def mali_t628_platform(base: ExynosPlatform | None = None) -> ExynosPlatform:
    """Exynos 5420-class: Mali-T628 MP6 @ 600 MHz, LPDDR3e (~14.9 GB/s)."""
    base = base or default_platform()
    return dataclasses.replace(
        base,
        mali=dataclasses.replace(base.mali, shader_cores=6, clock_hz=600e6),
        dram=_scaled_dram(base.dram, 14.9 / 12.8),
    )


def mali_t760_platform(base: ExynosPlatform | None = None) -> ExynosPlatform:
    """Exynos 5433-class: Mali-T760 MP8 @ 700 MHz, LPDDR3 (~16.5 GB/s).

    Midgard gen-4 also improved the FP64 rate and cheapened atomics.
    """
    base = base or default_platform()
    mali = dataclasses.replace(
        base.mali,
        shader_cores=8,
        clock_hz=700e6,
        fp64_cost_factor=1.5,
        atomic_cycles=base.mali.atomic_cycles * 0.6,
    )
    return dataclasses.replace(base, mali=mali, dram=_scaled_dram(base.dram, 16.5 / 12.8))


def fixed_driver_platform(base: ExynosPlatform | None = None) -> ExynosPlatform:
    """The T604 with the promised driver fix: an empty quirk table."""
    base = base or default_platform()
    return dataclasses.replace(base, driver_quirks=())


@dataclass(frozen=True)
class PlatformComparison:
    """Per-benchmark Opt runs across platform variants."""

    benchmark: str
    precision: Precision
    runs: dict[str, RunResult]
    serial_seconds: float

    def speedup(self, platform_name: str) -> float | None:
        run = self.runs[platform_name]
        if not run.ok:
            return None
        return self.serial_seconds / run.elapsed_s


def compare_platforms(
    benchmark: str,
    platforms: dict[str, ExynosPlatform],
    precision: Precision = Precision.SINGLE,
    scale: float = 0.5,
    seed: int = 1234,
) -> PlatformComparison:
    """Run the Opt version of one benchmark on each platform variant.

    The Serial baseline (the A15 cluster, identical across these
    variants) is taken from the first platform so speedups compare.
    """
    if not platforms:
        raise ValueError("need at least one platform")
    runs: dict[str, RunResult] = {}
    serial_seconds = None
    for name, platform in platforms.items():
        bench = create(
            benchmark, precision=precision, scale=scale, seed=seed, platform=platform
        )
        if serial_seconds is None:
            serial_seconds = run_version(bench, version=Version.SERIAL).elapsed_s
        runs[name] = run_version(bench, version=Version.OPENCL_OPT)
    return PlatformComparison(
        benchmark=benchmark,
        precision=precision,
        runs=runs,
        serial_seconds=serial_seconds,
    )


def estimate_speedups(
    benchmark: str,
    platforms: dict[str, ExynosPlatform],
    precision: Precision = Precision.SINGLE,
    scale: float = 0.5,
    seed: int = 1234,
) -> dict[str, float | None]:
    """Model-only Opt-over-Serial speedup per platform variant.

    The batched counterpart of :func:`compare_platforms`: every number
    comes from ``platform.pricing_model()`` — tuner pricing for the Opt
    candidate, the CPU pricer for the Serial baseline — with no
    functional NumPy execution and no meter.  ``None`` marks a variant
    where no Opt candidate is feasible (the paper's missing DP bars).
    The Serial baseline is taken from the first platform, exactly like
    :func:`compare_platforms`.

    Thin wrapper over :func:`repro.designspace.opt_over_serial`, the one
    batched-pricing path shared with the sensitivity probes.
    """
    from .designspace import opt_over_serial

    return opt_over_serial(
        benchmark,
        platforms,
        precision=precision,
        scale=scale,
        seed=seed,
        serial="first",
    )


def run_fixed_driver_amcd(
    precision: Precision = Precision.DOUBLE, scale: float = 0.5, seed: int = 1234
) -> RunResult:
    """The counterfactual the paper couldn't run: DP amcd, fixed driver."""
    bench = create(
        "amcd", precision=precision, scale=scale, seed=seed,
        platform=fixed_driver_platform(),
    )
    return run_version(bench, version=Version.OPENCL_OPT)
