"""OpenCL-style flags and enums for the mini-runtime.

Names mirror the OpenCL 1.1 C API closely enough that the host-code
optimization of Section III-A reads like the real thing:
``CL_MEM_ALLOC_HOST_PTR`` + map/unmap vs ``CL_MEM_USE_HOST_PTR`` +
explicit enqueue copies vs plain device buffers.
"""

from __future__ import annotations

import enum


class MemFlag(enum.IntFlag):
    """``cl_mem_flags`` subset used by the paper's host code."""

    READ_WRITE = 1 << 0
    WRITE_ONLY = 1 << 1
    READ_ONLY = 1 << 2
    USE_HOST_PTR = 1 << 3
    ALLOC_HOST_PTR = 1 << 4
    COPY_HOST_PTR = 1 << 5


class MapFlag(enum.IntFlag):
    """``cl_map_flags``."""

    READ = 1 << 0
    WRITE = 1 << 1


class DeviceType(enum.Enum):
    """``cl_device_type`` subset."""

    CPU = "cpu"
    GPU = "gpu"


class CommandType(enum.Enum):
    """What a queue entry did (for event introspection)."""

    NDRANGE_KERNEL = "ndrange_kernel"
    WRITE_BUFFER = "write_buffer"
    READ_BUFFER = "read_buffer"
    MAP_BUFFER = "map_buffer"
    UNMAP_MEM_OBJECT = "unmap_mem_object"
    FILL_BUFFER = "fill_buffer"
    COPY_BUFFER = "copy_buffer"


class CommandStatus(enum.Enum):
    """Execution status of an enqueued command."""

    QUEUED = "queued"
    COMPLETE = "complete"
    ERROR = "error"
