"""The in-order command queue: where commands get priced and executed.

``CommandQueue`` mirrors ``clCreateCommandQueue`` with profiling always
on.  Every enqueued command advances a simulated clock, appends a power
:class:`~repro.power.rails.Activity` segment to the queue's timeline,
executes the command's functional effect (NumPy copies or the kernel's
NumPy implementation), and returns an :class:`~repro.ocl.event.Event`
with profiling timestamps.

The timeline is the bridge to the measurement stack: the benchmark
runner converts it into a power trace and samples it with the simulated
Yokogawa meter.
"""

from __future__ import annotations

import numpy as np

from ..errors import (
    CLInvalidValue,
    CLInvalidWorkGroupSize,
    CLOutOfResources,
)
from ..mali.timing import GpuLaunchTiming, time_launch
from ..power.rails import Activity, ActivityKind
from ..workload import WorkloadTraits
from .buffer import Buffer
from .context import Context
from .device import Device
from .driver import copy_seconds, driver_local_size, map_seconds
from .enums import CommandStatus, CommandType, MapFlag
from .event import Event
from .kernel import Kernel


class CommandQueue:
    """In-order command queue with profiling."""

    def __init__(self, context: Context, device: Device | None = None):
        self.context = context
        self.device = device or context.device
        self._clock = 0.0
        self.timeline: list[Activity] = []
        self.events: list[Event] = []

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _record(self, command: CommandType, activity: Activity, info: dict) -> Event:
        start = self._clock
        self._clock += activity.duration_s
        self.timeline.append(activity)
        event = Event(
            command_type=command,
            queued_s=start,
            start_s=start,
            end_s=self._clock,
            status=CommandStatus.COMPLETE,
            info=info,
        )
        self.events.append(event)
        return event

    @property
    def elapsed_s(self) -> float:
        """Total simulated time consumed by this queue."""
        return self._clock

    def reset_timeline(self) -> None:
        """Drop accumulated activities (start of a timed region)."""
        self.timeline.clear()
        self.events.clear()
        self._clock = 0.0

    # ------------------------------------------------------------------
    # data commands
    # ------------------------------------------------------------------
    def enqueue_write_buffer(self, buffer: Buffer, src: np.ndarray | None = None) -> Event:
        """``clEnqueueWriteBuffer`` — explicit host→device copy."""
        if src is None:
            if buffer.host_array is None:
                raise CLInvalidValue("no source: pass src or use a USE_HOST_PTR buffer")
            src = buffer.host_array
        nbytes = buffer._write_from(src)
        duration = copy_seconds(nbytes)
        activity = Activity(
            kind=ActivityKind.HOST_COPY,
            duration_s=duration,
            active_cpu_cores=1,
            cpu_ipc=0.9,
            dram_bandwidth=2.0 * nbytes / duration,  # read + write streams
        )
        return self._record(CommandType.WRITE_BUFFER, activity, {"bytes": nbytes})

    def enqueue_read_buffer(self, buffer: Buffer, dst: np.ndarray | None = None) -> Event:
        """``clEnqueueReadBuffer`` — explicit device→host copy."""
        if dst is None:
            if buffer.host_array is None:
                raise CLInvalidValue("no destination: pass dst or use a USE_HOST_PTR buffer")
            dst = buffer.host_array
        nbytes = buffer._read_into(dst)
        duration = copy_seconds(nbytes)
        activity = Activity(
            kind=ActivityKind.HOST_COPY,
            duration_s=duration,
            active_cpu_cores=1,
            cpu_ipc=0.9,
            dram_bandwidth=2.0 * nbytes / duration,
        )
        return self._record(CommandType.READ_BUFFER, activity, {"bytes": nbytes})

    def enqueue_fill_buffer(self, buffer: Buffer, value=0) -> Event:
        """``clEnqueueFillBuffer`` — device-side memset.

        On the unified-memory Mali this is a GPU-side write stream at
        the store bandwidth; it is how kernels like the histogram zero
        their accumulators inside the timed region.
        """
        view = buffer.device_view()
        view[...] = value
        hw = self.device.hardware
        bw = hw.dram.gpu_cap * hw.dram.efficiency.unit
        duration = max(buffer.size / bw, 2e-6)
        activity = Activity(
            kind=ActivityKind.GPU_KERNEL,
            duration_s=duration,
            gpu_alu_utilization=0.02,
            gpu_ls_utilization=0.9,
            dram_bandwidth=buffer.size / duration,
        )
        return self._record(CommandType.FILL_BUFFER, activity, {"bytes": buffer.size})

    def enqueue_copy_buffer(self, src: Buffer, dst: Buffer) -> Event:
        """``clEnqueueCopyBuffer`` — device-side buffer copy."""
        if src.size != dst.size:
            raise CLInvalidValue(
                f"copy between buffers of different sizes ({src.size} vs {dst.size})"
            )
        np.copyto(dst.device_view().reshape(-1), src.device_view().reshape(-1))
        hw = self.device.hardware
        bw = hw.dram.gpu_cap * hw.dram.efficiency.unit
        duration = max(2.0 * src.size / bw, 2e-6)  # read + write streams
        activity = Activity(
            kind=ActivityKind.GPU_KERNEL,
            duration_s=duration,
            gpu_alu_utilization=0.02,
            gpu_ls_utilization=0.9,
            dram_bandwidth=2.0 * src.size / duration,
        )
        return self._record(CommandType.COPY_BUFFER, activity, {"bytes": src.size})

    def enqueue_map_buffer(self, buffer: Buffer, flags: MapFlag = MapFlag.READ | MapFlag.WRITE) -> tuple[np.ndarray, Event]:
        """``clEnqueueMapBuffer`` — returns the host-visible array.

        On ``ALLOC_HOST_PTR`` buffers this is the zero-copy fast path of
        Section III-A (cache maintenance only); on other buffers it
        degenerates to a full copy.
        """
        array = buffer._map()
        duration = map_seconds(buffer.size, buffer.zero_copy)
        dram_bw = (buffer.size / duration) if not buffer.zero_copy else 0.0
        activity = Activity(
            kind=ActivityKind.HOST_COPY,
            duration_s=duration,
            active_cpu_cores=1,
            cpu_ipc=0.5,
            dram_bandwidth=dram_bw,
        )
        event = self._record(
            CommandType.MAP_BUFFER, activity, {"bytes": buffer.size, "zero_copy": buffer.zero_copy}
        )
        return array, event

    def enqueue_unmap_mem_object(self, buffer: Buffer) -> Event:
        """``clEnqueueUnmapMemObject``."""
        buffer._unmap()
        duration = map_seconds(buffer.size, buffer.zero_copy)
        activity = Activity(
            kind=ActivityKind.HOST_COPY,
            duration_s=duration,
            active_cpu_cores=1,
            cpu_ipc=0.5,
            dram_bandwidth=(buffer.size / duration) if not buffer.zero_copy else 0.0,
        )
        return self._record(CommandType.UNMAP_MEM_OBJECT, activity, {"bytes": buffer.size})

    # ------------------------------------------------------------------
    # kernel launch
    # ------------------------------------------------------------------
    def enqueue_nd_range_kernel(
        self,
        kernel: Kernel,
        global_size: int,
        local_size: int | None = None,
        traits: WorkloadTraits | None = None,
    ) -> Event:
        """``clEnqueueNDRangeKernel`` on the simulated Mali-T604.

        ``local_size=None`` invokes the driver's (imperfect) heuristic,
        per Section III-A.  Raises ``CL_OUT_OF_RESOURCES`` for kernels
        whose register allocation failed at build time — the paper's
        double-precision nbody/2dcon failure mode.
        """
        if kernel.launch_error is not None:
            raise CLOutOfResources(
                f"kernel {kernel.name!r} cannot be scheduled: {kernel.launch_error}"
            ) from kernel.launch_error
        assert kernel.compiled is not None
        if global_size < 1:
            raise CLInvalidValue(f"global_size must be >= 1, got {global_size}")
        hw = self.device.hardware
        if local_size is None:
            local_size = driver_local_size(global_size, self.device.max_work_group_size)
        if local_size > self.device.max_work_group_size:
            raise CLInvalidWorkGroupSize(
                f"local size {local_size} > device max {self.device.max_work_group_size}"
            )
        if global_size % local_size != 0:
            raise CLInvalidWorkGroupSize(
                f"global size {global_size} not divisible by local size {local_size} "
                "(OpenCL 1.1 requirement)"
            )

        traits = traits or kernel.spec.traits
        timing: GpuLaunchTiming = time_launch(
            compiled=kernel.compiled,
            n_items=global_size,
            local_size=local_size,
            traits=traits,
            config=hw.mali,
            dram=hw.dram_model(),
            caches=hw.gpu_caches(),
        )

        # functional execution: device views of the buffer args
        args = [
            a.device_view() if isinstance(a, Buffer) else a
            for a in kernel.bound_args()
        ]
        kernel.spec.func(*args)

        activity = Activity(
            kind=ActivityKind.GPU_KERNEL,
            duration_s=timing.seconds,
            gpu_alu_utilization=timing.alu_utilization,
            gpu_ls_utilization=timing.ls_utilization,
            dram_bandwidth=timing.dram_bandwidth,
        )
        return self._record(
            CommandType.NDRANGE_KERNEL,
            activity,
            {
                "kernel": kernel.name,
                "global_size": global_size,
                "local_size": local_size,
                "timing": timing,
            },
        )

    def finish(self) -> None:
        """``clFinish`` — in-order synchronous queue: a no-op."""
