"""OpenCL device objects backed by the simulated hardware."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..calibration.exynos5250 import ExynosPlatform, default_platform
from .enums import DeviceType


@dataclass(frozen=True)
class Device:
    """A compute device of the simulated platform.

    The Mali-T604 is the paper's subject: the first embedded GPU with
    OpenCL **Full Profile** support, including ``cl_khr_fp64`` — the
    property that makes it HPC-relevant at all (Embedded Profile
    relaxes exactly the FP64/IEEE-754 guarantees HPC needs).
    """

    name: str
    device_type: DeviceType
    vendor: str
    profile: str
    extensions: tuple[str, ...]
    max_work_group_size: int
    max_compute_units: int
    global_mem_bytes: int
    hardware: ExynosPlatform = field(repr=False, compare=False, default=None)  # type: ignore[assignment]

    def supports_fp64(self) -> bool:
        return "cl_khr_fp64" in self.extensions

    @property
    def is_gpu(self) -> bool:
        return self.device_type == DeviceType.GPU


def mali_embedded_profile(platform: ExynosPlatform | None = None) -> Device:
    """A pre-T604 embedded GPU exposing only the *Embedded Profile*.

    §II-B: the Embedded Profile relaxes 64-bit integer support, image
    support and the floating-point requirements — everything HPC needs.
    This device exists so the Full-vs-Embedded contrast the paper builds
    its relevance on can be demonstrated: double-precision kernels fail
    to build here.
    """
    import dataclasses

    from .driver import embedded_profile_quirks

    hw = platform or default_platform()
    hw = dataclasses.replace(hw, driver_quirks=embedded_profile_quirks())
    return Device(
        name="Embedded-Profile GPU (pre-T604 class)",
        device_type=DeviceType.GPU,
        vendor="ARM",
        profile="EMBEDDED_PROFILE",
        extensions=("cl_khr_global_int32_base_atomics",),
        max_work_group_size=hw.mali.max_work_group_size,
        max_compute_units=hw.mali.shader_cores,
        global_mem_bytes=2 * 1024**3,
        hardware=hw,
    )


def mali_t604(platform: ExynosPlatform | None = None) -> Device:
    """The simulated Mali-T604 device."""
    hw = platform or default_platform()
    return Device(
        name="Mali-T604",
        device_type=DeviceType.GPU,
        vendor="ARM",
        profile="FULL_PROFILE",
        extensions=(
            "cl_khr_fp64",
            "cl_khr_int64_base_atomics",
            "cl_khr_global_int32_base_atomics",
            "cl_khr_byte_addressable_store",
        ),
        max_work_group_size=hw.mali.max_work_group_size,
        max_compute_units=hw.mali.shader_cores,
        global_mem_bytes=2 * 1024**3,
        hardware=hw,
    )
