"""OpenCL events with profiling info (``CL_QUEUE_PROFILING_ENABLE``)."""

from __future__ import annotations

from dataclasses import dataclass, field

from .enums import CommandStatus, CommandType


@dataclass
class Event:
    """Completion record of one enqueued command.

    Times are simulated queue-clock seconds (monotonic from queue
    creation), matching ``clGetEventProfilingInfo`` semantics.
    """

    command_type: CommandType
    queued_s: float
    start_s: float
    end_s: float
    status: CommandStatus = CommandStatus.COMPLETE
    #: free-form details (bytes copied, launch breakdown ...)
    info: dict = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        """``CL_PROFILING_COMMAND_END - CL_PROFILING_COMMAND_START``."""
        return self.end_s - self.start_s

    def wait(self) -> "Event":
        """``clWaitForEvents`` — commands complete synchronously here."""
        return self
