"""Driver-stack behaviours: quirks, heuristics and transfer costs.

Three empirical behaviours of the 2013 ARM Mali driver stack matter to
the paper's results and are modelled here:

* **the FP64 compiler defect** — "a compiler issue that does not allow
  the correct termination of the compilation phase for the OpenCL
  kernel in double precision" (paper §V-A, amcd).  The defect triggers
  on kernels combining double-precision arithmetic with an inlined
  integer-RNG helper (the Metropolis acceptance pattern);
* **the unreliable NULL local-size heuristic** — "we noticed that,
  currently, the driver is not always capable of doing a good
  selection" (§III-A): the driver picks the largest power-of-two
  divisor of the global size up to 128, ignoring register pressure and
  work-group-count quantization;
* **host transfer costs** — memcpy bandwidth for enqueue read/write
  copies and cache-maintenance cost for map/unmap on the unified
  memory, driving the Section III-A host-code comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..compiler.options import CompileOptions
from ..errors import CompilerInternalError
from ..ir.analysis import walk_stmts
from ..ir.nodes import Call, Kernel

#: sustained CPU memcpy bandwidth for enqueue read/write copies, bytes/s
HOST_MEMCPY_BANDWIDTH = 2.2e9
#: fixed driver cost of any enqueue data command, seconds
TRANSFER_BASE_OVERHEAD_S = 12e-6
#: cache clean/invalidate bandwidth for map/unmap on unified memory
CACHE_MAINTENANCE_BANDWIDTH = 9.0e9
#: fixed cost of a map or unmap call, seconds
MAP_BASE_OVERHEAD_S = 6e-6

#: helper-function names the FP64 compiler defect trips over
_RNG_HELPER_NAMES = frozenset({"lcg_rand", "xorshift", "rand_lcg"})


@dataclass(frozen=True)
class Fp64RngCompilerBug:
    """The amcd double-precision compile failure, as a quirk-table entry."""

    def check(self, kernel: Kernel, options: CompileOptions) -> None:
        if not kernel.uses_fp64:
            return
        for stmt in walk_stmts(kernel.body):
            if isinstance(stmt, Call) and stmt.name in _RNG_HELPER_NAMES:
                raise CompilerInternalError(
                    f"internal error: compilation of kernel {kernel.name!r} did not "
                    "terminate (known driver defect: fp64 kernels with inlined "
                    f"integer RNG helper {stmt.name!r}; fixed in a future driver)"
                )


@dataclass(frozen=True)
class EmbeddedProfileNoFp64:
    """OpenCL *Embedded Profile* restriction: no ``cl_khr_fp64``.

    §II-B of the paper: most pre-T604 embedded GPUs shipped the Embedded
    Profile, whose relaxations include exactly the 64-bit support HPC
    needs — "devices that can be profitably used in a HPC scenario will
    still have to support the OpenCL Full Profile".  Building a kernel
    that touches fp64 on such a device fails outright.
    """

    def check(self, kernel: Kernel, options: CompileOptions) -> None:
        if kernel.uses_fp64:
            raise CompilerInternalError(
                f"kernel {kernel.name!r} uses double precision, but this device "
                "implements only the OpenCL Embedded Profile (no cl_khr_fp64); "
                "HPC workloads require a Full Profile device such as the Mali-T604"
            )


def default_quirks() -> tuple:
    """The quirk table of the simulated driver version."""
    return (Fp64RngCompilerBug(),)


def embedded_profile_quirks() -> tuple:
    """Quirk table of a pre-T604 Embedded Profile device."""
    return (EmbeddedProfileNoFp64(), Fp64RngCompilerBug())


def driver_local_size(global_size: int, max_work_group_size: int) -> int:
    """The driver's work-group size pick when ``local_work_size=NULL``.

    Real behaviour per the paper: frequently adequate, sometimes bad.
    The modelled heuristic takes the largest power-of-two divisor of the
    global size, capped at 128 — it never considers register pressure
    (so register-heavy kernels get quantized occupancy) nor the
    work-group count (so small launches land on fewer groups than
    cores).
    """
    if global_size < 1:
        raise ValueError("global_size must be >= 1")
    pick = 1
    while pick * 2 <= min(128, max_work_group_size) and global_size % (pick * 2) == 0:
        pick *= 2
    return pick


def copy_seconds(nbytes: int) -> float:
    """Host-side time for an enqueue read/write copy of ``nbytes``."""
    return TRANSFER_BASE_OVERHEAD_S + nbytes / HOST_MEMCPY_BANDWIDTH


def map_seconds(nbytes: int, zero_copy: bool) -> float:
    """Host-side time for a map (or unmap) of ``nbytes``.

    Zero-copy (ALLOC_HOST_PTR) buffers pay only cache maintenance; a
    map of a non-host-allocated buffer degenerates to a full copy.
    """
    if zero_copy:
        return MAP_BASE_OVERHEAD_S + nbytes / CACHE_MAINTENANCE_BANDWIDTH
    return copy_seconds(nbytes)
