"""OpenCL kernel objects (``clCreateKernel``/``clSetKernelArg``)."""

from __future__ import annotations

from typing import Any

import numpy as np

from ..errors import CLInvalidKernelArgs, CLInvalidValue
from .buffer import Buffer
from .program import Program


class Kernel:
    """A kernel handle with bound arguments."""

    def __init__(self, program: Program, name: str):
        self.program = program
        self.name = name
        built = program.built_kernel(name)
        self.spec = built.spec
        self.compiled = built.compiled
        self.launch_error = built.launch_error
        n_params = len(self.spec.ir.params)
        self._args: list[Any] = [None] * n_params

    # ------------------------------------------------------------------
    @property
    def num_args(self) -> int:
        return len(self._args)

    @property
    def elems_per_item(self) -> int:
        """Elements each work-item covers after compilation (vectorized
        kernels need a proportionally smaller global size)."""
        if self.compiled is None:
            return self.spec.ir.elems_per_item
        return self.compiled.elems_per_item

    def set_arg(self, index: int, value: Buffer | np.generic | int | float) -> None:
        """``clSetKernelArg``."""
        if not 0 <= index < len(self._args):
            raise CLInvalidValue(
                f"kernel {self.name!r} has {len(self._args)} args; index {index} invalid"
            )
        self._args[index] = value

    def set_args(self, *values) -> None:
        """Convenience: bind all arguments at once."""
        if len(values) != len(self._args):
            raise CLInvalidKernelArgs(
                f"kernel {self.name!r} expects {len(self._args)} args, got {len(values)}"
            )
        for i, v in enumerate(values):
            self.set_arg(i, v)

    def bound_args(self) -> list[Any]:
        """Validated argument list for a launch."""
        missing = [i for i, a in enumerate(self._args) if a is None]
        if missing:
            raise CLInvalidKernelArgs(
                f"kernel {self.name!r}: arguments {missing} not set"
            )
        return list(self._args)

    def work_group_info(self) -> dict:
        """``clGetKernelWorkGroupInfo`` analogue.

        Reports the per-kernel limits a Mali developer tunes against:
        the register-limited work-group ceiling, the preferred size
        multiple (the quad granularity of the tripipe front end), and
        the compiler's register/spill accounting.
        """
        if self.compiled is None:
            return {
                "kernel_work_group_size": 0,
                "preferred_work_group_size_multiple": 4,
                "registers": None,
                "spilled": None,
                "launchable": False,
            }
        report = self.compiled.registers
        device_max = self.program.context.device.max_work_group_size
        return {
            "kernel_work_group_size": min(report.threads_per_core, device_max),
            "preferred_work_group_size_multiple": 4,
            "registers": report.registers_128,
            "spilled": report.spilled_registers,
            "launchable": True,
        }

    def global_size_for(self, n_elements: int) -> int:
        """NDRange global size covering ``n_elements`` problem elements.

        Rounds up to a multiple of the per-item coverage; the functional
        implementations guard the tail exactly like real kernels do.
        """
        per_item = self.elems_per_item
        return max(1, -(-n_elements // per_item))
