"""OpenCL context (``clCreateContext`` analogue)."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import CLInvalidValue
from .device import Device


@dataclass
class Context:
    """Owns devices and the memory objects created against them."""

    devices: tuple[Device, ...]
    _buffers: list = field(default_factory=list, repr=False)

    def __init__(self, devices: tuple[Device, ...] | list[Device] | Device):
        if isinstance(devices, Device):
            devices = (devices,)
        devices = tuple(devices)
        if not devices:
            raise CLInvalidValue("a context needs at least one device")
        self.devices = devices
        self._buffers = []

    @property
    def device(self) -> Device:
        """The single device of a one-device context (the common case)."""
        return self.devices[0]

    def register_buffer(self, buffer) -> None:
        self._buffers.append(buffer)

    @property
    def allocated_bytes(self) -> int:
        return sum(b.size for b in self._buffers if not b.released)
