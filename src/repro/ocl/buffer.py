"""OpenCL buffer objects and the Mali unified-memory semantics.

Section III-A of the paper, "Memory allocation and mapping", is about
exactly these objects:

* memory from plain ``malloc`` is **not** GPU-visible at all — a kernel
  argument must be a ``cl_mem``;
* ``CL_MEM_USE_HOST_PTR`` wraps an existing host allocation, but the
  driver still requires ``clEnqueueWriteBuffer``/``clEnqueueReadBuffer``
  copies to move data in and out — "it does not solve the additional
  copy issue";
* ``CL_MEM_ALLOC_HOST_PTR`` lets the driver allocate GPU-mapped memory
  that the host can *map* (``clEnqueueMapBuffer`` /
  ``clEnqueueUnmapMemObject``) at cache-maintenance cost only — the
  zero-copy path the paper recommends on this unified-memory SoC.

The buffer stores its device-visible contents in a NumPy array; the
command queue charges the appropriate transfer costs per flag.
"""

from __future__ import annotations

import numpy as np

from ..errors import CLInvalidMemObject, CLInvalidValue
from .context import Context
from .enums import MemFlag


class Buffer:
    """A ``cl_mem`` buffer object."""

    def __init__(
        self,
        context: Context,
        flags: MemFlag,
        hostbuf: np.ndarray | None = None,
        shape: tuple[int, ...] | int | None = None,
        dtype: np.dtype | type | None = None,
    ):
        self.context = context
        self.flags = flags
        self.released = False
        self._mapped = False

        if hostbuf is None and (shape is None or dtype is None):
            raise CLInvalidValue("Buffer needs either hostbuf or shape+dtype")
        if flags & MemFlag.USE_HOST_PTR and flags & MemFlag.ALLOC_HOST_PTR:
            raise CLInvalidValue("USE_HOST_PTR and ALLOC_HOST_PTR are mutually exclusive")
        if (flags & (MemFlag.USE_HOST_PTR | MemFlag.COPY_HOST_PTR)) and hostbuf is None:
            raise CLInvalidValue("USE_HOST_PTR/COPY_HOST_PTR require a hostbuf")

        self.host_array: np.ndarray | None = None
        if flags & MemFlag.USE_HOST_PTR:
            assert hostbuf is not None
            # device-visible storage is distinct: the driver copies
            self.host_array = hostbuf
            self._storage = np.zeros_like(hostbuf)
        elif hostbuf is not None:
            if flags & MemFlag.COPY_HOST_PTR:
                self._storage = np.array(hostbuf, copy=True)
            else:
                # shape/dtype template only; contents undefined
                self._storage = np.zeros_like(hostbuf)
        else:
            self._storage = np.zeros(shape, dtype=dtype)

        context.register_buffer(self)

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Buffer size in bytes."""
        return int(self._storage.nbytes)

    @property
    def shape(self) -> tuple[int, ...]:
        return self._storage.shape

    @property
    def dtype(self) -> np.dtype:
        return self._storage.dtype

    @property
    def is_mapped(self) -> bool:
        return self._mapped

    @property
    def zero_copy(self) -> bool:
        """True when host mapping costs only cache maintenance."""
        return bool(self.flags & MemFlag.ALLOC_HOST_PTR)

    # ------------------------------------------------------------------
    # storage access — used by the queue, not by user code
    # ------------------------------------------------------------------
    def device_view(self) -> np.ndarray:
        """The device-visible contents (the simulated GPU's view)."""
        self._check_alive()
        if self._mapped:
            raise CLInvalidMemObject(
                f"buffer used by a kernel while mapped to the host; "
                f"unmap it first (clEnqueueUnmapMemObject)"
            )
        return self._storage

    def _map(self) -> np.ndarray:
        self._check_alive()
        if self._mapped:
            raise CLInvalidMemObject("buffer is already mapped")
        self._mapped = True
        return self._storage

    def _unmap(self) -> None:
        self._check_alive()
        if not self._mapped:
            raise CLInvalidMemObject("buffer is not mapped")
        self._mapped = False

    def _write_from(self, src: np.ndarray) -> int:
        self._check_alive()
        if src.nbytes != self.size:
            raise CLInvalidValue(
                f"write of {src.nbytes} bytes into a {self.size}-byte buffer"
            )
        np.copyto(self._storage, src.reshape(self._storage.shape))
        return self.size

    def _read_into(self, dst: np.ndarray) -> int:
        self._check_alive()
        if dst.nbytes != self.size:
            raise CLInvalidValue(
                f"read of {self.size} bytes into a {dst.nbytes}-byte array"
            )
        np.copyto(dst, self._storage.reshape(dst.shape))
        return self.size

    def release(self) -> None:
        """``clReleaseMemObject``."""
        self.released = True

    def _check_alive(self) -> None:
        if self.released:
            raise CLInvalidMemObject("buffer has been released")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Buffer(size={self.size}, flags={self.flags!r}, "
            f"mapped={self._mapped}, zero_copy={self.zero_copy})"
        )
