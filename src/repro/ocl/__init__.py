"""Mini-OpenCL host API backed by the simulated Mali-T604.

The surface mirrors OpenCL 1.1 closely enough that the paper's
host-code optimizations are expressible verbatim: buffer flags
(``USE_HOST_PTR`` vs ``ALLOC_HOST_PTR``), map/unmap vs read/write
copies, NDRange launches with explicit or driver-chosen local sizes,
and profiling events.
"""

from .buffer import Buffer
from .context import Context
from .device import Device, mali_embedded_profile, mali_t604
from .driver import (
    EmbeddedProfileNoFp64,
    Fp64RngCompilerBug,
    copy_seconds,
    default_quirks,
    driver_local_size,
    embedded_profile_quirks,
    map_seconds,
)
from .enums import CommandStatus, CommandType, DeviceType, MapFlag, MemFlag
from .event import Event
from .kernel import Kernel
from .platform import Platform, get_platforms
from .program import KernelSpec, Program
from .queue import CommandQueue

__all__ = [
    "Buffer",
    "CommandQueue",
    "CommandStatus",
    "CommandType",
    "Context",
    "Device",
    "EmbeddedProfileNoFp64",
    "DeviceType",
    "Event",
    "Fp64RngCompilerBug",
    "Kernel",
    "KernelSpec",
    "MapFlag",
    "MemFlag",
    "Platform",
    "Program",
    "copy_seconds",
    "default_quirks",
    "embedded_profile_quirks",
    "driver_local_size",
    "get_platforms",
    "mali_embedded_profile",
    "mali_t604",
    "map_seconds",
]
