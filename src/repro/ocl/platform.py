"""OpenCL platform discovery (``clGetPlatformIDs`` analogue)."""

from __future__ import annotations

from dataclasses import dataclass

from ..calibration.exynos5250 import ExynosPlatform, default_platform
from .device import Device, mali_t604
from .enums import DeviceType


@dataclass(frozen=True)
class Platform:
    """An OpenCL platform (one per installed driver stack)."""

    name: str
    vendor: str
    version: str
    devices: tuple[Device, ...]

    def get_devices(self, device_type: DeviceType | None = None) -> tuple[Device, ...]:
        if device_type is None:
            return self.devices
        return tuple(d for d in self.devices if d.device_type == device_type)


def get_platforms(hardware: ExynosPlatform | None = None) -> tuple[Platform, ...]:
    """Enumerate platforms of the simulated board.

    The Arndale board image ships ARM's Mali OpenCL driver exposing one
    platform with the GPU.  (The A15 cluster is not an OpenCL device in
    that stack — the paper's CPU baselines are plain serial/OpenMP C.)
    """
    hw = hardware or default_platform()
    return (
        Platform(
            name="ARM Platform",
            vendor="ARM",
            version="OpenCL 1.1 FULL_PROFILE",
            devices=(mali_t604(hw),),
        ),
    )
