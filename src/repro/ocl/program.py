"""OpenCL program objects (``clCreateProgramWithSource``/``clBuildProgram``).

A real OpenCL program carries kernel *source*; this runtime carries,
per kernel, a :class:`KernelSpec` — the kernel's IR (what the compiler
model transforms and the GPU model prices), its functional NumPy
implementation (what actually computes the numbers, identical under
every compile option), and the workload traits of the problem instance
(footprints/imbalance for the cache and job-manager models).

Build semantics mirror the driver stack the paper used:

* the FP64 RNG compiler defect aborts the *build*
  (``CL_BUILD_PROGRAM_FAILURE`` — amcd in double precision);
* register-file exhaustion is only reported when the kernel is
  *launched* (``CL_OUT_OF_RESOURCES`` — optimized double-precision
  nbody/2dcon), exactly as the paper observed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..compiler.options import CompileOptions
from ..compiler.pipeline import CompiledKernel, compile_kernel
from ..errors import (
    CLBuildProgramFailure,
    CLInvalidValue,
    CompilerInternalError,
    RegisterAllocationError,
)
from ..ir.nodes import Kernel as IrKernel
from ..workload import WorkloadTraits
from .context import Context
from .driver import default_quirks


@dataclass(frozen=True)
class KernelSpec:
    """Everything the runtime needs to know about one kernel."""

    ir: IrKernel
    func: Callable[..., None]
    traits: WorkloadTraits

    @property
    def name(self) -> str:
        return self.ir.name


@dataclass
class _BuiltKernel:
    spec: KernelSpec
    compiled: CompiledKernel | None
    launch_error: RegisterAllocationError | None = None


class Program:
    """A program: kernel specs, built per :class:`CompileOptions`."""

    def __init__(self, context: Context, specs: list[KernelSpec] | dict[str, KernelSpec]):
        if isinstance(specs, dict):
            specs = list(specs.values())
        if not specs:
            raise CLInvalidValue("program needs at least one kernel")
        self.context = context
        self.specs: dict[str, KernelSpec] = {s.name: s for s in specs}
        self._built: dict[str, _BuiltKernel] = {}
        self.build_log: list[str] = []
        self.build_options: CompileOptions | None = None

    def build(self, options: CompileOptions | None = None, quirks=None) -> "Program":
        """``clBuildProgram``: compile every kernel under ``options``.

        ``quirks=None`` resolves to the context device's driver quirk
        table (the simulated driver version); pass ``()`` explicitly to
        model a defect-free driver.
        """
        options = options or CompileOptions()
        if quirks is None:
            hw = self.context.device.hardware
            platform_quirks = getattr(hw, "driver_quirks", None) if hw is not None else None
            quirks = platform_quirks if platform_quirks is not None else default_quirks()
        self._built.clear()
        self.build_log.clear()
        self.build_options = options
        for name, spec in self.specs.items():
            try:
                compiled = compile_kernel(spec.ir, options, quirks=quirks)
            except CompilerInternalError as exc:
                self.build_log.append(f"{name}: FAILED: {exc}")
                raise CLBuildProgramFailure(f"kernel {name!r}: {exc}") from exc
            except RegisterAllocationError as exc:
                # allocation failures surface at launch, not at build
                self.build_log.append(f"{name}: deferred launch failure: {exc}")
                self._built[name] = _BuiltKernel(spec=spec, compiled=None, launch_error=exc)
                continue
            self.build_log.extend(f"{name}: {line}" for line in compiled.log)
            self._built[name] = _BuiltKernel(spec=spec, compiled=compiled)
        return self

    def create_kernel(self, name: str) -> "Kernel":
        """``clCreateKernel``."""
        from .kernel import Kernel  # deferred: kernel imports program types

        if not self._built:
            raise CLInvalidValue("program must be built before creating kernels")
        if name not in self._built:
            raise CLInvalidValue(f"no kernel named {name!r} in program")
        return Kernel(self, name)

    def built_kernel(self, name: str) -> _BuiltKernel:
        return self._built[name]
