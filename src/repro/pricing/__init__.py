"""Batched grid pricing: one protocol, four layer implementations.

A cold campaign used to price every (benchmark, version, precision,
size, options) cell through per-cell Python in the mali, cpu, memory and
power models.  This package generalizes the tuner's
:class:`~repro.mali.timing.LaunchPricer` pattern to the whole grid: a
planner describes its work as :mod:`~repro.pricing.cells` values, hands
the list to a :class:`PricingModel`, and each layer answers with a small
number of vectorized NumPy evaluations instead of a dict walk per cell.

The contract every implementation honors is **bitwise identity**: the
batched rows equal the scalar models' results bit for bit — elementwise
float64 products match the scalar ``(count*n) * cost`` expressions,
reductions accumulate sequentially in source dict order (never
``np.sum``), and guarded-out terms are added as exact ``0.0``.  The
scalar entry points (``time_launch``, ``time_serial``, ``time_openmp``,
``transfer_seconds``, ``BoardPowerModel.trace``) remain as thin shims or
single-cell conveniences, and memo/persist cache keys are unchanged.

Implementations:

* :class:`~repro.mali.timing.GpuPricingModel` — launch timings;
* :class:`~repro.cpu.pricing.CpuPricingModel` — Serial/OpenMP timings;
* :class:`~repro.memory.dram.DramPricingModel` — transfer seconds;
* :class:`~repro.power.model.PowerPricingModel` — power traces;
* :class:`~repro.pricing.grid.PlatformPricing` — all four behind one
  platform-level facade (``ExynosPlatform.pricing_model()``).
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from .cells import (
    MODE_OPENMP,
    MODE_SERIAL,
    CpuCell,
    GpuLaunchCell,
    TraceCell,
    TransferCell,
)

__all__ = [
    "CpuCell",
    "GpuLaunchCell",
    "MODE_OPENMP",
    "MODE_SERIAL",
    "PricingModel",
    "TraceCell",
    "TransferCell",
]


@runtime_checkable
class PricingModel(Protocol):
    """Batched evaluation surface of one model layer.

    ``price`` takes a whole planned sequence of cells and returns one
    result row per cell, in order, computed with as few vectorized
    passes as the layer can manage; ``price_one`` is the single-cell
    convenience the scalar entry points shim through.  Rows are the
    layer's existing result types (``GpuLaunchTiming``, ``CpuTiming``,
    transfer seconds, ``PowerTrace``) — batched pricing changes how many
    Python-level passes run, never what they return.
    """

    def price(self, cells) -> tuple:
        """One result row per cell, in input order."""
        ...  # pragma: no cover - protocol

    def price_one(self, cell):
        """The row a one-element ``price`` would return."""
        ...  # pragma: no cover - protocol
