"""Platform-level pricing facade, campaign seeding, model-only estimates.

:class:`PlatformPricing` bundles the four layer
:class:`~repro.pricing.PricingModel` implementations of one
:class:`~repro.calibration.exynos5250.ExynosPlatform` behind a single
object (reached via ``platform.pricing_model()``), dispatching
heterogeneous cell lists to the right layer.  On top of it sit the grid
helpers the campaign engine and the what-if studies use:

* :func:`seed_cpu_timing` — batch-price a benchmark's pending CPU cells
  and seed the ``cpu_timing`` memo under the exact keys
  ``run_cpu_version`` will look up, so dispatch finds them warm;
* :func:`estimate_cpu_seconds` / :func:`estimate_opt_seconds` —
  model-only iteration times (no functional execution, no meter), the
  cheap currency of SoC design-space exploration.
"""

from __future__ import annotations

from .. import perf
from ..cpu.pricing import CpuPricingModel
from ..mali.timing import GpuPricingModel
from ..memory.dram import DramPricingModel
from ..power.model import PowerPricingModel
from .cells import (
    MODE_OPENMP,
    MODE_SERIAL,
    CpuCell,
    GpuLaunchCell,
    TraceCell,
    TransferCell,
)


class PlatformPricing:
    """All four batched pricing models of one platform, as one facade.

    Shares one :class:`~repro.memory.dram.DramModel` and one cache
    hierarchy per side across the layer models, and itself implements
    the :class:`~repro.pricing.PricingModel` protocol over heterogeneous
    cell lists by dispatching each cell to its layer and reassembling
    rows in input order.
    """

    def __init__(self, platform) -> None:
        self.platform = platform
        self.dram_model = platform.dram_model()
        self.cpu_caches = platform.cpu_caches()
        self.gpu_caches = platform.gpu_caches()
        self.power_model = platform.power_model()
        self.gpu = GpuPricingModel(platform.mali, self.dram_model, self.gpu_caches)
        self.cpu = CpuPricingModel(platform.cpu, self.dram_model, self.cpu_caches)
        self.dram = DramPricingModel(self.dram_model)
        self.power = PowerPricingModel(self.power_model)

    def model_for(self, cell):
        """The layer model that prices one cell type."""
        if isinstance(cell, GpuLaunchCell):
            return self.gpu
        if isinstance(cell, CpuCell):
            return self.cpu
        if isinstance(cell, TransferCell):
            return self.dram
        if isinstance(cell, TraceCell):
            return self.power
        raise TypeError(f"not a pricing cell: {cell!r}")

    def price(self, cells) -> tuple:
        """One row per cell, each layer batched over its own cells."""
        cells = tuple(cells)
        buckets: dict[int, list[int]] = {}
        models: dict[int, object] = {}
        for i, cell in enumerate(cells):
            model = self.model_for(cell)
            mk = id(model)
            models[mk] = model
            buckets.setdefault(mk, []).append(i)
        out: list = [None] * len(cells)
        for mk, idxs in buckets.items():
            rows = models[mk].price([cells[i] for i in idxs])
            for j, i in enumerate(idxs):
                out[i] = rows[j]
        return tuple(out)

    def price_one(self, cell):
        """Single-cell convenience: dispatch and price."""
        return self.model_for(cell).price_one(cell)


# ---------------------------------------------------------------------------
# campaign grid seeding
# ---------------------------------------------------------------------------


def seed_cpu_timing(bench, versions) -> int:
    """Batch-price a benchmark's CPU cells into the ``cpu_timing`` memo.

    The campaign engine calls this once per (benchmark, precision) group
    before dispatching its pending cells: the group's Serial/OpenMP
    timings are priced in one vectorized pass and seeded under the exact
    content keys ``run_cpu_version`` builds, so each cell's own lookup
    hits both tiers.  Values are bitwise what the per-cell path computes
    (``time_serial``/``time_openmp`` shim through the same pricer), so
    results are identical with seeding on or off.  Returns the number of
    cells seeded; a no-op when the fast lane is disabled.
    """
    from ..benchmarks.base import Version, cpu_pricing_inputs, cpu_pricing_key

    modes = {Version.SERIAL: MODE_SERIAL, Version.OPENMP: MODE_OPENMP}
    wanted: list = []
    for version in versions:
        if version in modes and version not in wanted:
            wanted.append(version)
    if not wanted or not perf.is_enabled():
        return 0
    pricing = bench.platform.pricing_model()
    ir, mix, traits, n = cpu_pricing_inputs(bench)
    cells = [
        CpuCell(mix=mix, mode=modes[version], n_elements=n, traits=traits)
        for version in wanted
    ]
    rows = pricing.cpu.price(cells)
    memo = perf.cache("cpu_timing")
    for version, row in zip(wanted, rows):
        key = cpu_pricing_key(bench, ir, version, n, traits, pricing)
        memo.get_or_compute(key, lambda row=row: row)
    return len(wanted)


# ---------------------------------------------------------------------------
# model-only estimates (design-space currency)
# ---------------------------------------------------------------------------


def estimate_cpu_seconds(bench, mode: str = MODE_SERIAL) -> float:
    """Model-only Serial/OpenMP seconds of one timed iteration.

    Prices the benchmark's CPU cell through its platform's
    ``pricing_model()`` without running functional NumPy code or the
    meter — what a platform sweep needs to rank design points.
    """
    from ..benchmarks.base import cpu_pricing_inputs

    pricing = bench.platform.pricing_model()
    _, mix, traits, n = cpu_pricing_inputs(bench)
    cell = CpuCell(mix=mix, mode=mode, n_elements=n, traits=traits)
    return pricing.cpu.price_one(cell).seconds


def estimate_opt_seconds(bench) -> float | None:
    """Model-only tuned OpenCL-Opt seconds of one timed iteration.

    Runs the autotuner (compiles + prices, no functional execution) and
    returns the winning candidate's modeled time, or ``None`` when no
    candidate is feasible (the paper's missing DP bars).
    """
    from ..optimizations.autotune import tune

    best = tune(bench)
    if best is None:
        return None
    options, local_size = best
    return bench.estimate_iteration_seconds(options, local_size)
