"""Cell types of the batched pricing surface.

A *cell* is one unit of model-evaluation work a campaign plans: one GPU
launch to time, one CPU (Serial/OpenMP) iteration to time, one DRAM byte
mix to move, or one activity sequence to turn into a power trace.  Cells
are plain frozen descriptions — no model state — so a planner can build
thousands of them, hand the whole list to a
:class:`~repro.pricing.PricingModel`, and get the rows back in order.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..compiler.pipeline import CompiledKernel
from ..ir.analysis import InstructionMix
from ..ir.nodes import AccessPattern
from ..power.rails import Activity
from ..workload import WorkloadTraits

#: ``CpuCell.mode`` values
MODE_SERIAL = "serial"
MODE_OPENMP = "openmp"


@dataclass(frozen=True)
class GpuLaunchCell:
    """One NDRange launch to price (the ``time_launch`` argument set)."""

    compiled: CompiledKernel
    traits: WorkloadTraits
    n_items: int
    local_size: int
    concurrent_agents: int = 1


@dataclass(frozen=True)
class CpuCell:
    """One Serial or OpenMP timed iteration to price."""

    mix: InstructionMix
    mode: str
    n_elements: int
    traits: WorkloadTraits

    def __post_init__(self) -> None:
        if self.mode not in (MODE_SERIAL, MODE_OPENMP):
            raise ValueError(f"unknown CPU pricing mode {self.mode!r}")


@dataclass(frozen=True)
class TransferCell:
    """One DRAM byte mix to move from one agent.

    ``bytes_by_pattern`` iteration order is significant: the batched
    model accumulates its columns in this order to stay bitwise-identical
    to ``DramModel.transfer_seconds``.
    """

    agent: str
    bytes_by_pattern: dict[AccessPattern, float] = field(compare=False)
    concurrent_agents: int = 1


@dataclass(frozen=True)
class TraceCell:
    """One activity sequence to turn into a board power trace."""

    activities: tuple[Activity, ...]
