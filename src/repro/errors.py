"""Exception hierarchy for the ``repro`` library.

Two families live here:

* :class:`ReproError` — programming/model errors raised by the simulation
  infrastructure itself (invalid IR, bad calibration, misuse of the API).
* :class:`CLError` — the mini-OpenCL runtime's analogue of OpenCL error
  codes.  The paper's evaluation depends on two specific runtime failures
  (``CL_OUT_OF_RESOURCES`` for register-file exhaustion in Figure 2(b),
  and an internal compiler defect for the double-precision ``amcd``
  kernel), so the error surface mirrors the host API a Mali OpenCL
  programmer would see.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class IRError(ReproError):
    """Raised for structurally invalid kernel IR."""


class CompilerError(ReproError):
    """Base class for kernel-compilation failures."""


class RegisterAllocationError(CompilerError):
    """Register demand exceeds what the compiler can spill around.

    The OpenCL runtime translates this into ``CL_OUT_OF_RESOURCES`` at
    launch time, matching the behaviour the paper reports for the
    double-precision optimized ``nbody`` and ``2dcon`` kernels.
    """

    def __init__(self, message: str, registers_required: int, register_limit: int):
        super().__init__(message)
        self.registers_required = registers_required
        self.register_limit = register_limit


class CompilerInternalError(CompilerError):
    """Models a defect inside the (closed-source) kernel compiler.

    The paper could not compile the double-precision ``amcd`` kernel at
    all: "a compiler issue that does not allow the correct termination of
    the compilation phase".  The driver quirk table raises this error for
    the same kernel signature.
    """


class CalibrationError(ReproError):
    """Raised when calibration constants violate a physical invariant."""


class CLError(ReproError):
    """An OpenCL-style runtime error with a symbolic status code."""

    #: symbolic status, e.g. ``"CL_OUT_OF_RESOURCES"``
    code: str = "CL_ERROR"

    def __init__(self, message: str = ""):
        super().__init__(f"{self.code}: {message}" if message else self.code)


class CLInvalidValue(CLError):
    """Malformed argument to a host API call."""

    code = "CL_INVALID_VALUE"


class CLInvalidMemObject(CLError):
    """A buffer was released, mapped, or otherwise unusable."""

    code = "CL_INVALID_MEM_OBJECT"


class CLInvalidKernelArgs(CLError):
    """Kernel launched with unset or mismatched arguments."""

    code = "CL_INVALID_KERNEL_ARGS"


class CLInvalidWorkGroupSize(CLError):
    """Local size violates device limits or NDRange divisibility."""

    code = "CL_INVALID_WORK_GROUP_SIZE"


class CLOutOfResources(CLError):
    """Launch failed for lack of device resources (register file).

    The error behind the paper's missing double-precision optimized
    nbody/2dcon results (Figure 2(b)).
    """

    code = "CL_OUT_OF_RESOURCES"


class CLBuildProgramFailure(CLError):
    """``clBuildProgram`` failed (kernel rejected by the compiler)."""

    code = "CL_BUILD_PROGRAM_FAILURE"


class CLMapFailure(CLError):
    """``clEnqueueMapBuffer`` could not map the buffer."""

    code = "CL_MAP_FAILURE"
