"""Cluster extrapolation: from one Arndale node to an HPC machine.

The paper's motivation (§I) is the Mont-Blanc line of work — building
"large-scale HPC systems from SoCs based on embedded processors" — and
its conclusion claims embedded GPUs make such systems "promising
candidates for next generation HPC systems".  This module does the
arithmetic behind that claim: it turns measured single-node results
(sustained GFLOP/s from the dmmm runs, board watts from the meter) into
node and cluster projections, and compares the energy efficiency
against a contemporary (2013) Xeon node.

The projection is deliberately first-order — perfect scaling, no
interconnect — i.e. an *upper bound* for the embedded side, which is
the honest way to frame a feasibility argument.
"""

from __future__ import annotations

from dataclasses import dataclass

from .benchmarks.base import Precision, Version, run_version
from .benchmarks.registry import create
from .calibration.exynos5250 import ExynosPlatform


@dataclass(frozen=True)
class NodeSpec:
    """One compute node's sustained characteristics."""

    name: str
    gflops: float
    watts: float
    memory_gb: float

    def __post_init__(self) -> None:
        if self.gflops <= 0 or self.watts <= 0 or self.memory_gb <= 0:
            raise ValueError("node characteristics must be positive")

    @property
    def gflops_per_watt(self) -> float:
        return self.gflops / self.watts


#: a typical 2013 dual-socket Xeon E5-2670 node: ~280 GFLOP/s sustained
#: DGEMM across 16 cores, ~350 W at the wall, 64 GB
XEON_2013_NODE = NodeSpec("Xeon E5-2670 node (2013)", gflops=280.0, watts=350.0, memory_gb=64.0)


def measure_arndale_node(
    precision: Precision = Precision.SINGLE,
    scale: float = 0.5,
    seed: int = 1234,
    platform: ExynosPlatform | None = None,
) -> NodeSpec:
    """Characterize one Arndale node from its best dmmm Opt run.

    Sustained GFLOP/s = 2·n³ / elapsed of the optimized matrix multiply
    (the conventional LINPACK-style probe); watts = the meter's mean
    board power during that run; memory = the board's 2 GB.
    """
    bench = create("dmmm", precision=precision, scale=scale, seed=seed, platform=platform)
    result = run_version(bench, version=Version.OPENCL_OPT)
    if not result.ok:
        raise RuntimeError(f"dmmm Opt failed: {result.failure}")
    flops = 2.0 * bench.n**3
    return NodeSpec(
        name=f"Arndale / Exynos 5250 node ({precision.label} GPU Opt)",
        gflops=flops / result.elapsed_s / 1e9,
        watts=result.mean_power_w,
        memory_gb=2.0,
    )


@dataclass(frozen=True)
class ClusterProjection:
    """A machine built from ``n_nodes`` identical nodes (perfect scaling)."""

    node: NodeSpec
    n_nodes: int

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")

    @property
    def total_gflops(self) -> float:
        return self.node.gflops * self.n_nodes

    @property
    def total_kw(self) -> float:
        return self.node.watts * self.n_nodes / 1e3

    @property
    def total_memory_tb(self) -> float:
        return self.node.memory_gb * self.n_nodes / 1024.0

    @property
    def gflops_per_watt(self) -> float:
        return self.node.gflops_per_watt


def nodes_for_target(node: NodeSpec, target_gflops: float) -> ClusterProjection:
    """Smallest cluster of ``node`` reaching ``target_gflops``."""
    if target_gflops <= 0:
        raise ValueError("target must be positive")
    import math

    return ClusterProjection(node=node, n_nodes=math.ceil(target_gflops / node.gflops))


def compare_at_target(
    embedded: NodeSpec, conventional: NodeSpec, target_gflops: float
) -> dict:
    """Both machines sized to the same sustained throughput."""
    a = nodes_for_target(embedded, target_gflops)
    b = nodes_for_target(conventional, target_gflops)
    return {
        "target_gflops": target_gflops,
        "embedded": a,
        "conventional": b,
        "power_ratio": a.total_kw / b.total_kw,
        "node_ratio": a.n_nodes / b.n_nodes,
    }


def format_comparison(result: dict) -> str:
    a: ClusterProjection = result["embedded"]
    b: ClusterProjection = result["conventional"]
    lines = [
        f"machines sized for {result['target_gflops'] / 1e3:.1f} sustained TFLOP/s:",
        f"  {a.node.name}",
        f"    {a.n_nodes:7,d} nodes  {a.total_kw:8.1f} kW  "
        f"{a.total_memory_tb:6.1f} TB  {a.gflops_per_watt:5.2f} GF/W",
        f"  {b.node.name}",
        f"    {b.n_nodes:7,d} nodes  {b.total_kw:8.1f} kW  "
        f"{b.total_memory_tb:6.1f} TB  {b.gflops_per_watt:5.2f} GF/W",
        f"  power ratio (embedded/conventional): {result['power_ratio']:.2f}",
    ]
    return "\n".join(lines)
