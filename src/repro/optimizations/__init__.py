"""Section III optimization techniques, work-size rules, autotuner."""

from .autotune import TuneResult, TuneTrial, sweep, tune
from .techniques import (
    ALL_TECHNIQUES,
    DATA_LAYOUT_SOA,
    LOAD_DISTRIBUTION,
    LOOP_UNROLLING,
    MEMORY_MAPPING,
    NO_THREAD_DIVERGENCE,
    OPTION_TECHNIQUES,
    QUALIFIERS,
    Technique,
    TechniqueKind,
    UNIFIED_MEMORY_NO_TILING,
    VECTORIZATION,
    VECTOR_LOADS,
    VECTOR_SIZE_TUNING,
)
from .worksize import (
    GUIDE_CONSTANTS,
    MIN_EFFICIENT_GLOBAL,
    candidate_local_sizes,
    guide_global_size,
    is_global_size_efficient,
    round_global,
)

__all__ = [
    "ALL_TECHNIQUES",
    "DATA_LAYOUT_SOA",
    "GUIDE_CONSTANTS",
    "LOAD_DISTRIBUTION",
    "LOOP_UNROLLING",
    "MEMORY_MAPPING",
    "MIN_EFFICIENT_GLOBAL",
    "NO_THREAD_DIVERGENCE",
    "OPTION_TECHNIQUES",
    "QUALIFIERS",
    "Technique",
    "TechniqueKind",
    "TuneResult",
    "TuneTrial",
    "UNIFIED_MEMORY_NO_TILING",
    "VECTORIZATION",
    "VECTOR_LOADS",
    "VECTOR_SIZE_TUNING",
    "candidate_local_sizes",
    "guide_global_size",
    "is_global_size_efficient",
    "round_global",
    "sweep",
    "tune",
]
