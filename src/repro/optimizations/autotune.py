"""Empirical tuner for the OpenCL Opt configurations.

The paper's method is explicitly empirical: "we suggest, whenever the
code allows it, to experiment with different vector sizes (e.g. size of
4, 8, 16)" and "we strongly suggest to manually tune the local work
size parameter".  :func:`tune` does what the authors did by hand: sweep
the benchmark's candidate (compile options × local size) space, discard
candidates that fail to build or launch, and keep the fastest.

The infeasible-candidate rule reproduces Figure 2(b)'s behaviour: in
double precision the aggressive vector+unroll points of ``nbody`` and
``2dcon`` exhaust the register file (``CL_OUT_OF_RESOURCES``), so the
best *feasible* configuration is close to the naive one and the
OpenCL-vs-Opt gap collapses — exactly what the paper reports.

Two search strategies produce the same selection:

* ``exhaustive`` — compile and price every candidate (the ablation
  benches use this to chart the whole space);
* ``pruned`` (default) — compile once per distinct options point
  (register exhaustion is local-size-independent, so one failure
  condemns the whole group: infeasibility memoization), order the
  surviving candidates by an optimistic roofline lower bound
  (:func:`repro.mali.timing.roofline_floor_seconds`), and skip any
  candidate whose *best case* is already slower than the incumbent's
  measured time.  Skipping only strictly-worse candidates and keeping
  trials in canonical candidate order makes the selected best — ties
  included — provably identical to ``exhaustive``'s.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..compiler.options import CompileOptions
from ..errors import CLError, CompilerError, ReproError

STRATEGIES = ("pruned", "exhaustive")


@dataclass(frozen=True)
class TuneTrial:
    """One candidate of the sweep.

    ``skipped`` marks candidates the pruned strategy discarded by lower
    bound without pricing; they are neither feasible (no measured time)
    nor infeasible (no build/launch failure).
    """

    options: CompileOptions
    local_size: int | None
    seconds: float | None
    error: str | None = None
    skipped: bool = False

    @property
    def feasible(self) -> bool:
        return self.error is None and not self.skipped


@dataclass(frozen=True)
class TuneResult:
    """Full sweep record (the ablation benches introspect this)."""

    trials: tuple[TuneTrial, ...]
    strategy: str = "exhaustive"

    @property
    def best(self) -> TuneTrial | None:
        feasible = [t for t in self.trials if t.feasible]
        if not feasible:
            return None
        return min(feasible, key=lambda t: t.seconds)

    @property
    def n_infeasible(self) -> int:
        """Candidates that failed to build or launch."""
        return sum(1 for t in self.trials if t.error is not None)

    @property
    def n_skipped(self) -> int:
        """Candidates discarded by the pruned strategy's lower bound."""
        return sum(1 for t in self.trials if t.skipped)

    @property
    def n_evaluated(self) -> int:
        """Candidates actually compiled and priced to a time."""
        return sum(1 for t in self.trials if t.seconds is not None)


def _candidates(bench, include_naive: bool) -> list[tuple[CompileOptions, int | None]]:
    """The deduplicated candidate list, in canonical order.

    Some benchmarks put the naive point in their own ``tuning_space``;
    appending the ``include_naive`` baseline must not evaluate it twice
    (duplicates would also double-count infeasible candidates).  First
    occurrence wins, so the canonical order is stable.
    """
    candidates = list(bench.tuning_space())
    if include_naive:
        from ..compiler.options import NAIVE

        candidates.append((NAIVE, None))
    seen: set[tuple[CompileOptions, int | None]] = set()
    unique: list[tuple[CompileOptions, int | None]] = []
    for candidate in candidates:
        if candidate in seen:
            continue
        seen.add(candidate)
        unique.append(candidate)
    return unique


def _sweep_exhaustive(bench, candidates) -> tuple[TuneTrial, ...]:
    trials: list[TuneTrial] = []
    for options, local_size in candidates:
        try:
            seconds = bench.estimate_iteration_seconds(options, local_size)
        except (CompilerError, CLError) as exc:
            trials.append(
                TuneTrial(options=options, local_size=local_size, seconds=None, error=str(exc))
            )
            continue
        trials.append(TuneTrial(options=options, local_size=local_size, seconds=seconds))
    return tuple(trials)


def _sweep_pruned(bench, candidates) -> tuple[TuneTrial, ...]:
    from ..compiler.pipeline import compile_kernel
    from ..mali.timing import roofline_floor_seconds
    from ..ocl.driver import default_quirks

    platform = bench.platform
    quirks = (
        platform.driver_quirks if platform.driver_quirks is not None else default_quirks()
    )
    dram = platform.dram_model()
    caches = platform.gpu_caches()

    trials: list[TuneTrial | None] = [None] * len(candidates)

    # Phase 1: one compile per distinct options point.  compile_kernel
    # takes no local size, so a failure (register exhaustion, driver
    # quirk) condemns every local size of the group at once — and the
    # error string each condemned trial records is exactly what
    # estimate_iteration_seconds would have raised for it.
    groups: dict[CompileOptions, list[int]] = {}
    for index, (options, _) in enumerate(candidates):
        groups.setdefault(options, []).append(index)

    floors: dict[int, float] = {}
    for options, indices in groups.items():
        try:
            compiled = compile_kernel(bench.kernel_ir(options), options, quirks=quirks)
        except (CompilerError, CLError) as exc:
            for index in indices:
                opts, local = candidates[index]
                trials[index] = TuneTrial(
                    options=opts, local_size=local, seconds=None, error=str(exc)
                )
            continue
        # Optimistic bound on the main launch: floor work-items (no
        # round-up to a local multiple — red launches a fixed grid) and
        # no occupancy/imbalance/overhead penalties.  Always <= the
        # estimate for every local size, so pruning on it is safe.
        n_items = max(1, math.ceil(bench.gpu_work_items() / compiled.elems_per_item))
        floor = roofline_floor_seconds(
            compiled, n_items, bench.gpu_traits(options), platform.mali, dram, caches
        )
        for index in indices:
            floors[index] = floor

    # Phase 2: evaluate in ascending-bound order; a candidate whose best
    # case exceeds the incumbent's measured time cannot win (nor tie).
    # Pricing is batched per options group: the first surviving candidate
    # of a group builds its iteration_pricer (compile + vectorized mix
    # tables, once), and every later local size of the group prices
    # through the same tables.  A pricer that fails to build (a stage-2
    # kernel can exhaust registers on its own) condemns its candidates
    # with the same error estimate_iteration_seconds would have raised.
    pricers: dict[CompileOptions, tuple[object, object]] = {}
    incumbent = math.inf
    for index in sorted(floors, key=lambda i: (floors[i], i)):
        options, local_size = candidates[index]
        if floors[index] > incumbent:
            trials[index] = TuneTrial(
                options=options, local_size=local_size, seconds=None, skipped=True
            )
            continue
        entry = pricers.get(options)
        if entry is None:
            try:
                entry = (bench.iteration_pricer(options), None)
            except (CompilerError, CLError) as exc:
                entry = (None, exc)
            pricers[options] = entry
        estimate, error = entry
        if estimate is None:
            trials[index] = TuneTrial(
                options=options, local_size=local_size, seconds=None, error=str(error)
            )
            continue
        try:
            seconds = estimate(local_size)
        except (CompilerError, CLError) as exc:
            trials[index] = TuneTrial(
                options=options, local_size=local_size, seconds=None, error=str(exc)
            )
            continue
        trials[index] = TuneTrial(options=options, local_size=local_size, seconds=seconds)
        incumbent = min(incumbent, seconds)

    return tuple(trials)  # type: ignore[arg-type]  # every slot was filled


def sweep(bench, include_naive: bool = True, strategy: str = "pruned") -> TuneResult:
    """Evaluate the benchmark's tuning space under a search strategy.

    ``include_naive`` adds the naive port itself (scalar kernel, driver
    local size) as a baseline candidate: when no optimization point
    beats it — which the model can legitimately produce for gather-bound
    kernels — the "Opt" version ships the naive kernel, as the paper's
    authors would have done.

    Both strategies return trials in canonical candidate order and
    select the same :attr:`TuneResult.best`; ``exhaustive`` prices every
    candidate (use it to chart the whole space), ``pruned`` skips
    provably-losing ones.
    """
    if strategy not in STRATEGIES:
        raise ReproError(f"unknown tuner strategy {strategy!r}; expected one of {STRATEGIES}")
    candidates = _candidates(bench, include_naive)
    if strategy == "exhaustive":
        trials = _sweep_exhaustive(bench, candidates)
    else:
        trials = _sweep_pruned(bench, candidates)
    return TuneResult(trials=trials, strategy=strategy)


def tune(bench, strategy: str = "pruned") -> tuple[CompileOptions, int | None] | None:
    """Best feasible (options, local size), or None if nothing builds."""
    best = sweep(bench, strategy=strategy).best
    if best is None:
        return None
    return best.options, best.local_size
