"""Empirical tuner for the OpenCL Opt configurations.

The paper's method is explicitly empirical: "we suggest, whenever the
code allows it, to experiment with different vector sizes (e.g. size of
4, 8, 16)" and "we strongly suggest to manually tune the local work
size parameter".  :func:`tune` does what the authors did by hand: sweep
the benchmark's candidate (compile options × local size) space, discard
candidates that fail to build or launch, and keep the fastest.

The infeasible-candidate rule reproduces Figure 2(b)'s behaviour: in
double precision the aggressive vector+unroll points of ``nbody`` and
``2dcon`` exhaust the register file (``CL_OUT_OF_RESOURCES``), so the
best *feasible* configuration is close to the naive one and the
OpenCL-vs-Opt gap collapses — exactly what the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..compiler.options import CompileOptions
from ..errors import CLError, CompilerError
from .worksize import round_global


@dataclass(frozen=True)
class TuneTrial:
    """One evaluated candidate."""

    options: CompileOptions
    local_size: int | None
    seconds: float | None
    error: str | None = None

    @property
    def feasible(self) -> bool:
        return self.error is None


@dataclass(frozen=True)
class TuneResult:
    """Full sweep record (the ablation benches introspect this)."""

    trials: tuple[TuneTrial, ...]

    @property
    def best(self) -> TuneTrial | None:
        feasible = [t for t in self.trials if t.feasible]
        if not feasible:
            return None
        return min(feasible, key=lambda t: t.seconds)

    @property
    def n_infeasible(self) -> int:
        return sum(1 for t in self.trials if not t.feasible)


def sweep(bench, include_naive: bool = True) -> TuneResult:
    """Evaluate every candidate of the benchmark's tuning space.

    ``include_naive`` adds the naive port itself (scalar kernel, driver
    local size) as a baseline candidate: when no optimization point
    beats it — which the model can legitimately produce for gather-bound
    kernels — the "Opt" version ships the naive kernel, as the paper's
    authors would have done.
    """
    candidates = list(bench.tuning_space())
    if include_naive:
        from ..compiler.options import NAIVE

        candidates.append((NAIVE, None))
    trials: list[TuneTrial] = []
    for options, local_size in candidates:
        try:
            seconds = bench.estimate_iteration_seconds(options, local_size)
        except (CompilerError, CLError) as exc:
            trials.append(
                TuneTrial(options=options, local_size=local_size, seconds=None, error=str(exc))
            )
            continue
        trials.append(TuneTrial(options=options, local_size=local_size, seconds=seconds))
    return TuneResult(trials=tuple(trials))


def tune(bench) -> tuple[CompileOptions, int | None] | None:
    """Best feasible (options, local size), or None if nothing builds."""
    best = sweep(bench).best
    if best is None:
        return None
    return best.options, best.local_size
