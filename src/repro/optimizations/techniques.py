"""The Section III optimization catalogue as first-class objects.

Used by the ablation benchmarks (one bench per technique) and by the
documentation examples: each technique knows how to switch itself on in
a :class:`~repro.compiler.options.CompileOptions`, and records the
paper's own rationale.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..compiler.options import CompileOptions


class TechniqueKind(enum.Enum):
    """Where in the stack a Section III technique acts."""

    HOST = "host code"
    KERNEL = "kernel code"
    ARCHITECTURAL = "architecture property"


@dataclass(frozen=True)
class Technique:
    """One optimization from Section III."""

    key: str
    title: str
    kind: TechniqueKind
    paper_rationale: str
    #: how to express the technique in compile options (None for host-
    #: side or architectural techniques that options don't encode)
    enable: tuple[tuple[str, object], ...] | None = None

    def apply(self, base: CompileOptions) -> CompileOptions:
        if self.enable is None:
            raise ValueError(f"technique {self.key!r} is not a compile option")
        return base.with_(**dict(self.enable))


MEMORY_MAPPING = Technique(
    key="memory_mapping",
    title="Memory allocation and mapping",
    kind=TechniqueKind.HOST,
    paper_rationale=(
        "Allocate with CL_MEM_ALLOC_HOST_PTR and use clEnqueueMapBuffer/"
        "clEnqueueUnmapMemObject so both the application processor and the "
        "Mali GPU access the same unified memory without copies."
    ),
)

LOAD_DISTRIBUTION = Technique(
    key="load_distribution",
    title="Load distribution (work-size tuning)",
    kind=TechniqueKind.HOST,
    paper_rationale=(
        "Global work size ~ max work-group size x shader cores x {4,8}; "
        "manually tune the local work size, the driver's NULL pick is "
        "not always good."
    ),
)

VECTORIZATION = Technique(
    key="vectorization",
    title="Vectorization",
    kind=TechniqueKind.KERNEL,
    paper_rationale=(
        "Shader cores have 128-bit vector registers; convert scalar types "
        "to vector types (float4...), reducing global work size and "
        "run-time scheduling overhead."
    ),
    enable=(("vector_width", 4),),
)

VECTOR_SIZE_TUNING = Technique(
    key="vector_size_tuning",
    title="Vector size tuning",
    kind=TechniqueKind.KERNEL,
    paper_rationale=(
        "The best vector size is not bound to the hardware width: wider "
        "types improve instruction-level scheduling but increase register "
        "pressure; experiment with 4, 8, 16."
    ),
    enable=(("vector_width", 8),),
)

VECTOR_LOADS = Technique(
    key="vector_loads",
    title="Vector loads/stores in scalar kernels",
    kind=TechniqueKind.KERNEL,
    paper_rationale=(
        "Vector load/store operations access multiple data elements with "
        "a single instruction, using bandwidth more efficiently even when "
        "compute stays scalar."
    ),
    enable=(("vector_loads", True),),
)

LOOP_UNROLLING = Technique(
    key="loop_unrolling",
    title="Loop unrolling",
    kind=TechniqueKind.KERNEL,
    paper_rationale=(
        "Unroll loops and replace multiple instructions with vector "
        "instructions; beware the remainder-iteration overhead when the "
        "trip count is not a multiple of the vector size."
    ),
    enable=(("unroll", 2),),
)

DATA_LAYOUT_SOA = Technique(
    key="data_layout_soa",
    title="Data organization (AOS to SOA)",
    kind=TechniqueKind.KERNEL,
    paper_rationale=(
        "AOS executes poorly in vector registers; SOA keeps types the "
        "same across the vector and enables vector instructions."
    ),
    enable=(("soa", True),),
)

QUALIFIERS = Technique(
    key="qualifiers",
    title="Directives and type qualifiers",
    kind=TechniqueKind.KERNEL,
    paper_rationale=(
        "inline enlarges basic blocks and removes call overhead; const "
        "lets the compiler assume more; restrict limits pointer aliasing."
    ),
    enable=(("qualifiers", True),),
)

UNIFIED_MEMORY_NO_TILING = Technique(
    key="unified_memory",
    title="Memory spaces: no local-memory tiling",
    kind=TechniqueKind.ARCHITECTURAL,
    paper_rationale=(
        "Mali maps OpenCL local memory to the same physical memory as "
        "global; traditional locality tiling is not required."
    ),
)

NO_THREAD_DIVERGENCE = Technique(
    key="no_divergence",
    title="Thread divergence is free",
    kind=TechniqueKind.ARCHITECTURAL,
    paper_rationale=(
        "The smallest unit of parallelism is a single work-item; "
        "divergent control flow carries no warp/wavefront penalty."
    ),
)

ALL_TECHNIQUES: tuple[Technique, ...] = (
    MEMORY_MAPPING,
    LOAD_DISTRIBUTION,
    VECTORIZATION,
    VECTOR_SIZE_TUNING,
    VECTOR_LOADS,
    LOOP_UNROLLING,
    DATA_LAYOUT_SOA,
    QUALIFIERS,
    UNIFIED_MEMORY_NO_TILING,
    NO_THREAD_DIVERGENCE,
)

#: techniques expressible as compile-option ablations
OPTION_TECHNIQUES: tuple[Technique, ...] = tuple(
    t for t in ALL_TECHNIQUES if t.enable is not None
)
