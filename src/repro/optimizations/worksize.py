"""Global/local work-size selection (Section III-A, "Load distribution").

The Mali OpenCL Developer Guide formula the paper quotes: "the optimal
global work size can be calculated as the device maximum work-group
size multiplied by the number of shader cores multiplied by a constant
[4 or 8 on the T604] ... more generally, the global work size must be
in the order of several thousands".  And for the local size: the driver
picks when ``NULL`` is passed, but "the driver is not always capable of
doing a good selection. ... we strongly suggest to manually tune the
local work size parameter."
"""

from __future__ import annotations

import math

from ..mali.config import MaliConfig

#: the Developer Guide's multiplier for the Mali-T604
GUIDE_CONSTANTS = (4, 8)

#: "the global work size must be in the order of several thousands"
MIN_EFFICIENT_GLOBAL = 2048


def guide_global_size(config: MaliConfig, constant: int = 4) -> int:
    """The Developer Guide's minimum global size for full utilization."""
    if constant not in GUIDE_CONSTANTS:
        raise ValueError(f"guide constant must be one of {GUIDE_CONSTANTS}, got {constant}")
    return config.max_work_group_size * config.shader_cores * constant


def is_global_size_efficient(global_size: int, config: MaliConfig) -> bool:
    """Whether the global size can keep the GPU resources utilized."""
    return global_size >= min(guide_global_size(config, 4), MIN_EFFICIENT_GLOBAL)


def candidate_local_sizes(config: MaliConfig) -> tuple[int, ...]:
    """The local sizes the paper's tuning sweeps (powers of two)."""
    sizes = []
    size = 32
    while size <= config.max_work_group_size:
        sizes.append(size)
        size *= 2
    return tuple(sizes)


def round_global(n_items: int, local_size: int) -> int:
    """Round a global size up to a multiple of the local size.

    OpenCL 1.1 requires divisibility; kernels guard the tail items.
    """
    if local_size < 1:
        raise ValueError("local_size must be >= 1")
    return math.ceil(n_items / local_size) * local_size
