"""Design-space hypercube: batch-price many SoC configs, emit Pareto data.

The ROADMAP's question — *"what Mali would beat the 2×A15 at equal
energy?"* — needs the full (configs × benchmarks × versions ×
vector-widths × precision) hypercube priced cheaply.  Looping the
per-config :class:`~repro.pricing.grid.PlatformPricing` facade is
correct but pays the whole grid walk once per config; this module
evaluates the hypercube as *stacked* NumPy evaluations instead:

* the cell grid (CPU Serial/OpenMP cells + every autotuner candidate of
  every benchmark, compiled once — kernels are config-independent) is
  built a single time by :class:`DesignSpace`;
* :class:`~repro.mali.timing.GpuConfigStack` and
  :class:`~repro.cpu.pricing.CpuConfigStack` hoist every config-invariant
  quantity, so each SoC config costs a few whole-grid array passes;
* board power comes from :func:`~repro.power.rails.stack_watts` over the
  row arrays.

Every lane is bitwise-identical to pricing the same cell through the
facade of that config's platform (``facade_rows`` *is* that loop, kept
as the reference engine and the benchmark baseline).

The **Opt** version of a (config, benchmark, precision) point is the
feasible candidate minimizing ``seconds × launches`` — the autotuner's
currency over the main-kernel candidate set.  Multi-kernel benchmarks
(hist's merge stage, red's second stage) price their main kernel here;
the full multi-stage ``iteration_pricer`` refinement stays the
campaign path's job.  Candidates whose kernels exceed a config's scaled
register file are infeasible on that config (``CL_OUT_OF_RESOURCES``),
which is how the paper's DP register-exhaustion collapse shows up
across the space.

On top sit deterministic Pareto helpers: :func:`dominates`,
:func:`frontier`, :func:`dominated`, :func:`equal_energy_speedup` and
:func:`equal_time_energy`.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from .benchmarks.base import Precision, cpu_pricing_inputs
from .benchmarks.registry import PAPER_ORDER, create
from .calibration.exynos5250 import ExynosPlatform, default_platform
from .calibration.socspace import SoCConfig, default_space
from .compiler.regalloc import fits_register_file
from .errors import CLError, CompilerError
from .power.rails import Activity, ActivityKind, stack_watts
from .pricing.cells import MODE_OPENMP, MODE_SERIAL, CpuCell, GpuLaunchCell, TraceCell

#: version labels of a design point (Opt = best feasible GPU candidate)
VERSIONS = ("Serial", "OpenMP", "Opt")
#: pseudo-benchmark name of the across-benchmarks sum
AGGREGATE = "aggregate"

_PRECISIONS_DEFAULT = (Precision.SINGLE, Precision.DOUBLE)


@dataclass(frozen=True)
class DesignPoint:
    """One (config, benchmark, precision, version) cell of the hypercube.

    ``seconds`` is one timed iteration (``× launches`` for GPU
    versions); ``energy_j`` is ``seconds × watts`` of the meterless
    board-power model.  Infeasible points (no Opt candidate fits the
    config) carry ``inf`` seconds/energy and zero watts.
    """

    config_name: str
    benchmark: str
    precision: str
    version: str
    seconds: float
    watts: float
    energy_j: float
    feasible: bool = True


class _BenchCells:
    """Cell spans of one (benchmark, precision) group in the flat grid."""

    __slots__ = ("name", "precision", "cpu_start", "gpu_start", "gpu_stop", "launches")

    def __init__(self, name, precision, cpu_start, gpu_start, gpu_stop, launches):
        self.name = name
        self.precision = precision
        self.cpu_start = cpu_start
        self.gpu_start = gpu_start
        self.gpu_stop = gpu_stop
        self.launches = launches


class SpaceRows:
    """Aligned row arrays of one config over a :class:`DesignSpace` grid.

    GPU lanes follow the space's GPU cell order, CPU lanes its CPU cell
    order ([Serial, OpenMP] per group).  ``gpu_iter_seconds`` is
    ``seconds × launches`` (the Opt currency); infeasible GPU lanes are
    ``inf`` seconds/energy, zero watts.
    """

    __slots__ = (
        "gpu_feasible",
        "gpu_seconds",
        "gpu_iter_seconds",
        "gpu_watts",
        "gpu_energy",
        "cpu_seconds",
        "cpu_watts",
        "cpu_energy",
    )

    def __init__(self, **arrays):
        for name in self.__slots__:
            setattr(self, name, arrays[name])


class DesignSpace:
    """The prepared hypercube: one cell grid + config stacks, many configs.

    Construction compiles every autotuner candidate once (candidates
    whose kernels cannot allocate at all — the hard
    ``CL_OUT_OF_RESOURCES`` limit — are dropped for every config, same
    as the tuner) and builds the GPU/CPU config stacks.
    ``stacked_rows`` then prices one config in a few array passes;
    ``facade_rows`` prices the identical cells through that config's
    :class:`~repro.pricing.grid.PlatformPricing` facade, bitwise equal
    lane for lane.
    """

    def __init__(
        self,
        benchmarks=PAPER_ORDER,
        precisions=_PRECISIONS_DEFAULT,
        scale: float = 0.5,
        seed: int = 1234,
        base: ExynosPlatform | None = None,
    ) -> None:
        import numpy as np

        from .compiler.pipeline import compile_kernel
        from .cpu.pricing import CpuConfigStack
        from .mali.timing import GpuConfigStack
        from .ocl.driver import default_quirks, driver_local_size
        from .optimizations.autotune import _candidates

        self.base = base if base is not None else default_platform()
        self.benchmarks = tuple(benchmarks)
        self.precisions = tuple(precisions)
        self.scale = scale
        self.seed = seed

        quirks = (
            self.base.driver_quirks
            if self.base.driver_quirks is not None
            else default_quirks()
        )
        groups: list[_BenchCells] = []
        cpu_cells: list[CpuCell] = []
        gpu_cells: list[GpuLaunchCell] = []
        launches: list[int] = []
        for name in self.benchmarks:
            for precision in self.precisions:
                bench = create(
                    name, precision=precision, scale=scale, seed=seed, platform=self.base
                )
                _, mix, traits, n = cpu_pricing_inputs(bench)
                cpu_start = len(cpu_cells)
                cpu_cells.append(
                    CpuCell(mix=mix, mode=MODE_SERIAL, n_elements=n, traits=traits)
                )
                cpu_cells.append(
                    CpuCell(mix=mix, mode=MODE_OPENMP, n_elements=n, traits=traits)
                )
                gpu_start = len(gpu_cells)
                for options, local in _candidates(bench, include_naive=True):
                    try:
                        compiled = compile_kernel(
                            bench.kernel_ir(options), options, quirks=quirks
                        )
                    except (CompilerError, CLError):
                        continue  # infeasible on every config (baseline ISA)
                    base_items = max(1, -(-bench.elements() // compiled.elems_per_item))
                    loc = local or driver_local_size(
                        base_items, self.base.mali.max_work_group_size
                    )
                    n_items = -(-base_items // loc) * loc
                    gtraits = bench.gpu_traits(options)
                    gpu_cells.append(
                        GpuLaunchCell(
                            compiled=compiled,
                            traits=gtraits,
                            n_items=n_items,
                            local_size=loc,
                        )
                    )
                    launches.append(gtraits.launches)
                groups.append(
                    _BenchCells(
                        name,
                        precision.value,
                        cpu_start,
                        gpu_start,
                        len(gpu_cells),
                        tuple(launches[gpu_start:]),
                    )
                )
        self.groups = groups
        self.cpu_cells = tuple(cpu_cells)
        self.gpu_cells = tuple(gpu_cells)
        self._launches_f = np.asarray([float(l) for l in launches])

        dram = self.base.dram_model()
        self._gpu_stack = (
            GpuConfigStack(self.gpu_cells, self.base.mali, dram, self.base.gpu_caches())
            if self.gpu_cells
            else None
        )
        self._cpu_stack = CpuConfigStack(
            self.cpu_cells, self.base.cpu, dram, self.base.cpu_caches()
        )

    # ------------------------------------------------------------------
    def stacked_rows(self, config: SoCConfig) -> SpaceRows:
        """Row arrays of one config via the config-axis stacks."""
        import numpy as np

        platform = config.platform(self.base)
        dram = platform.dram_model()
        rails = platform.rails

        c = self._cpu_stack.rows(platform.cpu, dram)
        cpu_watts = stack_watts(
            rails,
            ActivityKind.CPU,
            dram_bandwidth=c.dram_bandwidth,
            active_cpu_cores=c.active_cores,
            cpu_ipc=c.ipc,
        )
        cpu_energy = c.seconds * cpu_watts

        if self._gpu_stack is not None:
            g = self._gpu_stack.rows(platform.mali, dram)
            watts = stack_watts(
                rails,
                ActivityKind.GPU_KERNEL,
                dram_bandwidth=g.dram_bandwidth,
                gpu_alu_utilization=g.alu_utilization,
                gpu_ls_utilization=g.ls_utilization,
            )
            gpu_watts = np.where(g.feasible, watts, 0.0)
            gpu_iter = g.seconds * self._launches_f
            with np.errstate(invalid="ignore"):
                gpu_energy = np.where(g.feasible, gpu_iter * gpu_watts, np.inf)
            gpu_feasible = g.feasible
            gpu_seconds = g.seconds
        else:
            gpu_feasible = np.zeros(0, dtype=bool)
            gpu_seconds = gpu_iter = gpu_watts = gpu_energy = np.zeros(0)
        return SpaceRows(
            gpu_feasible=gpu_feasible,
            gpu_seconds=gpu_seconds,
            gpu_iter_seconds=gpu_iter,
            gpu_watts=gpu_watts,
            gpu_energy=gpu_energy,
            cpu_seconds=c.seconds,
            cpu_watts=cpu_watts,
            cpu_energy=cpu_energy,
        )

    def facade_rows(self, config: SoCConfig) -> SpaceRows:
        """Row arrays of one config via its per-platform pricing facade.

        The loop-over-facades reference engine: one
        :class:`~repro.pricing.grid.PlatformPricing` per config, cells
        pre-filtered by the same register-file predicate the stack uses,
        power through the facade's batched trace pricing.
        """
        import numpy as np

        platform = config.platform(self.base)
        pricing = platform.pricing_model()
        rf_scale = platform.mali.register_file_scale

        cpu_rows = pricing.cpu.price(self.cpu_cells)
        feasible = [
            fits_register_file(cell.compiled.registers, rf_scale)
            for cell in self.gpu_cells
        ]
        idx = [i for i, ok in enumerate(feasible) if ok]
        timings = pricing.gpu.price([self.gpu_cells[i] for i in idx])

        trace_cells = []
        for i, t in zip(idx, timings):
            duration = t.seconds * self.gpu_cells[i].traits.launches
            trace_cells.append(
                TraceCell(
                    (
                        Activity(
                            kind=ActivityKind.GPU_KERNEL,
                            duration_s=duration,
                            gpu_alu_utilization=t.alu_utilization,
                            gpu_ls_utilization=t.ls_utilization,
                            dram_bandwidth=t.dram_bandwidth,
                        ),
                    )
                )
            )
        for r in cpu_rows:
            trace_cells.append(
                TraceCell(
                    (
                        Activity(
                            kind=ActivityKind.CPU,
                            duration_s=r.seconds,
                            active_cpu_cores=r.active_cores,
                            cpu_ipc=r.ipc,
                            dram_bandwidth=r.dram_bandwidth,
                        ),
                    )
                )
            )
        traces = pricing.power.price(trace_cells)

        width = len(self.gpu_cells)
        gpu_feasible = np.asarray(feasible, dtype=bool)
        gpu_seconds = np.full(width, np.inf)
        gpu_iter = np.full(width, np.inf)
        gpu_watts = np.zeros(width)
        gpu_energy = np.full(width, np.inf)
        for k, (i, t) in enumerate(zip(idx, timings)):
            trace = traces[k]
            gpu_seconds[i] = t.seconds
            gpu_iter[i] = t.seconds * self.gpu_cells[i].traits.launches
            gpu_watts[i] = trace.segments[0].watts
            gpu_energy[i] = trace.energy_j
        cpu_seconds = np.asarray([r.seconds for r in cpu_rows])
        cpu_watts = np.asarray(
            [traces[len(idx) + j].segments[0].watts for j in range(len(cpu_rows))]
        )
        cpu_energy = np.asarray(
            [traces[len(idx) + j].energy_j for j in range(len(cpu_rows))]
        )
        return SpaceRows(
            gpu_feasible=gpu_feasible,
            gpu_seconds=gpu_seconds,
            gpu_iter_seconds=gpu_iter,
            gpu_watts=gpu_watts,
            gpu_energy=gpu_energy,
            cpu_seconds=cpu_seconds,
            cpu_watts=cpu_watts,
            cpu_energy=cpu_energy,
        )

    def rows(self, config: SoCConfig, engine: str = "stacked") -> SpaceRows:
        if engine == "stacked":
            return self.stacked_rows(config)
        if engine == "facade":
            return self.facade_rows(config)
        raise ValueError(f"unknown engine {engine!r}; expected 'stacked' or 'facade'")

    # ------------------------------------------------------------------
    def points(self, config: SoCConfig, rows: SpaceRows) -> list[DesignPoint]:
        """Design points of one config from its row arrays.

        Shared by both engines, so point equality reduces to row
        identity.  Emits [Serial, OpenMP, Opt] per (benchmark,
        precision) group, then per-precision aggregates (sums across
        benchmarks; an aggregate Opt is infeasible if any benchmark's
        is).
        """
        import numpy as np

        pts: list[DesignPoint] = []
        agg: dict[tuple[str, str], list] = {}  # (precision, version) -> [s, e, ok]
        for bc in self.groups:
            for version, lane in (("Serial", bc.cpu_start), ("OpenMP", bc.cpu_start + 1)):
                seconds = float(rows.cpu_seconds[lane])
                watts = float(rows.cpu_watts[lane])
                energy = float(rows.cpu_energy[lane])
                pts.append(
                    DesignPoint(
                        config_name=config.name,
                        benchmark=bc.name,
                        precision=bc.precision,
                        version=version,
                        seconds=seconds,
                        watts=watts,
                        energy_j=energy,
                    )
                )
                acc = agg.setdefault((bc.precision, version), [0.0, 0.0, True])
                acc[0] += seconds
                acc[1] += energy
            span = slice(bc.gpu_start, bc.gpu_stop)
            feas = rows.gpu_feasible[span]
            if feas.size and bool(feas.any()):
                j = int(np.argmin(rows.gpu_iter_seconds[span]))
                seconds = float(rows.gpu_iter_seconds[span][j])
                watts = float(rows.gpu_watts[span][j])
                energy = float(rows.gpu_energy[span][j])
                ok = True
            else:
                seconds, watts, energy, ok = float("inf"), 0.0, float("inf"), False
            pts.append(
                DesignPoint(
                    config_name=config.name,
                    benchmark=bc.name,
                    precision=bc.precision,
                    version="Opt",
                    seconds=seconds,
                    watts=watts,
                    energy_j=energy,
                    feasible=ok,
                )
            )
            acc = agg.setdefault((bc.precision, "Opt"), [0.0, 0.0, True])
            acc[0] += seconds
            acc[1] += energy
            acc[2] = acc[2] and ok
        for precision in dict.fromkeys(bc.precision for bc in self.groups):
            for version in VERSIONS:
                seconds, energy, ok = agg[(precision, version)]
                watts = energy / seconds if ok and seconds > 0 else 0.0
                pts.append(
                    DesignPoint(
                        config_name=config.name,
                        benchmark=AGGREGATE,
                        precision=precision,
                        version=version,
                        seconds=seconds,
                        watts=watts,
                        energy_j=energy,
                        feasible=ok,
                    )
                )
        return pts

    # ------------------------------------------------------------------
    def evaluate(
        self, configs, engine: str = "stacked"
    ) -> tuple[DesignPoint, ...]:
        """Points of many configs, in config order (single process)."""
        out: list[DesignPoint] = []
        for config in configs:
            out.extend(self.points(config, self.rows(config, engine)))
        return tuple(out)


# ---------------------------------------------------------------------------
# multi-process driver
# ---------------------------------------------------------------------------


def _eval_worker(payload) -> tuple[DesignPoint, ...]:
    """Worker: rebuild the space locally, evaluate a config chunk."""
    benchmarks, precision_values, scale, seed, engine, configs = payload
    space = DesignSpace(
        benchmarks=benchmarks,
        precisions=tuple(Precision(v) for v in precision_values),
        scale=scale,
        seed=seed,
    )
    return space.evaluate(configs, engine)


@dataclass(frozen=True)
class DesignSpaceResult:
    """The evaluated hypercube: configs, digests and every design point."""

    configs: tuple[SoCConfig, ...]
    digests: tuple[str, ...]
    points: tuple[DesignPoint, ...]
    benchmarks: tuple[str, ...]
    precisions: tuple[str, ...]
    scale: float
    seed: int

    def select(
        self,
        benchmark: str = AGGREGATE,
        precision: str = "single",
        version: str | None = "Opt",
        feasible_only: bool = False,
    ) -> tuple[DesignPoint, ...]:
        """Points of one hypercube slice, in evaluation order."""
        return tuple(
            p
            for p in self.points
            if p.benchmark == benchmark
            and p.precision == precision
            and (version is None or p.version == version)
            and (not feasible_only or p.feasible)
        )

    def point(self, config_name, benchmark, precision, version) -> DesignPoint:
        for p in self.points:
            if (
                p.config_name == config_name
                and p.benchmark == benchmark
                and p.precision == precision
                and p.version == version
            ):
                return p
        raise KeyError(
            f"no point ({config_name!r}, {benchmark!r}, {precision!r}, {version!r})"
        )

    def to_dict(self) -> dict:
        """JSON-ready form (CLI output; ``inf`` encoded as null)."""

        def num(x):
            return x if x == x and x not in (float("inf"), float("-inf")) else None

        return {
            "benchmarks": list(self.benchmarks),
            "precisions": list(self.precisions),
            "scale": self.scale,
            "seed": self.seed,
            "configs": [
                {
                    "name": c.name,
                    "digest": d,
                    "gpu_cores": c.gpu_cores,
                    "gpu_clock_hz": c.gpu_clock_hz,
                    "cpu_cores": c.cpu_cores,
                    "cpu_clock_hz": c.cpu_clock_hz,
                    "dram_gbps": c.dram_gbps,
                    "register_file_scale": c.register_file_scale,
                    "rail_scale": c.rail_scale,
                }
                for c, d in zip(self.configs, self.digests)
            ],
            "points": [
                {
                    "config": p.config_name,
                    "benchmark": p.benchmark,
                    "precision": p.precision,
                    "version": p.version,
                    "seconds": num(p.seconds),
                    "watts": num(p.watts),
                    "energy_j": num(p.energy_j),
                    "feasible": p.feasible,
                }
                for p in self.points
            ],
        }


def evaluate_space(
    configs=None,
    benchmarks=PAPER_ORDER,
    precisions=_PRECISIONS_DEFAULT,
    scale: float = 0.5,
    seed: int = 1234,
    jobs: int = 1,
    engine: str = "stacked",
) -> DesignSpaceResult:
    """Evaluate the full hypercube over a config family.

    ``configs`` defaults to :func:`~repro.calibration.socspace.default_space`
    (64 SoCs around the Exynos 5250).  ``jobs > 1`` shards configs over
    a process pool; each worker rebuilds the cell grid locally, and the
    output is byte-identical to ``jobs=1`` (configs are independent and
    reassembled in input order).
    """
    configs = tuple(configs) if configs is not None else default_space()
    if not configs:
        raise ValueError("need at least one SoCConfig")
    names = [c.name for c in configs]
    if len(set(names)) != len(names):
        raise ValueError("SoCConfig names must be unique")
    precisions = tuple(precisions)
    if jobs > 1 and len(configs) > 1:
        shards = min(jobs, len(configs))
        size = -(-len(configs) // shards)
        chunks = [configs[i : i + size] for i in range(0, len(configs), size)]
        payloads = [
            (
                tuple(benchmarks),
                tuple(p.value for p in precisions),
                scale,
                seed,
                engine,
                chunk,
            )
            for chunk in chunks
        ]
        points: list[DesignPoint] = []
        with ProcessPoolExecutor(max_workers=shards) as pool:
            for chunk_points in pool.map(_eval_worker, payloads):
                points.extend(chunk_points)
        points = tuple(points)
    else:
        space = DesignSpace(
            benchmarks=benchmarks, precisions=precisions, scale=scale, seed=seed
        )
        points = space.evaluate(configs, engine)
    digests = tuple(c.digest() for c in configs)
    return DesignSpaceResult(
        configs=configs,
        digests=digests,
        points=tuple(points),
        benchmarks=tuple(benchmarks),
        precisions=tuple(p.value for p in precisions),
        scale=scale,
        seed=seed,
    )


# ---------------------------------------------------------------------------
# Pareto helpers (minimize seconds and energy)
# ---------------------------------------------------------------------------


def dominates(a: DesignPoint, b: DesignPoint) -> bool:
    """Pareto domination on (seconds, energy_j), both minimized."""
    return (
        a.seconds <= b.seconds
        and a.energy_j <= b.energy_j
        and (a.seconds < b.seconds or a.energy_j < b.energy_j)
    )


def _sort_key(p: DesignPoint):
    return (p.seconds, p.energy_j, p.config_name, p.version)


def frontier(points) -> tuple[DesignPoint, ...]:
    """The non-dominated feasible points, deterministically ordered.

    Sorted by (seconds, energy, config name, version); duplicate
    (seconds, energy) pairs all survive (none strictly dominates the
    other), so equal designs stay visible.
    """
    feasible = [p for p in points if p.feasible]
    front = [
        p
        for p in feasible
        if not any(dominates(q, p) for q in feasible)
    ]
    return tuple(sorted(front, key=_sort_key))


def dominated(points) -> tuple[DesignPoint, ...]:
    """The feasible points *not* on the frontier, same ordering."""
    front = set(map(id, frontier(points)))
    return tuple(
        sorted((p for p in points if p.feasible and id(p) not in front), key=_sort_key)
    )


def equal_energy_speedup(points, ref: DesignPoint):
    """Best speedup over ``ref`` among points spending no more energy.

    Returns ``(speedup, point)`` for the fastest feasible point with
    ``energy_j <= ref.energy_j`` (ties broken by the deterministic sort
    key), or ``None`` when nothing qualifies.
    """
    viable = sorted(
        (p for p in points if p.feasible and p.energy_j <= ref.energy_j),
        key=_sort_key,
    )
    if not viable:
        return None
    best = viable[0]
    return ref.seconds / best.seconds, best


def equal_time_energy(points, ref: DesignPoint):
    """Least energy among points at least as fast as ``ref``.

    Returns ``(energy_j, point)`` for the most frugal feasible point
    with ``seconds <= ref.seconds`` (deterministic tie-break), or
    ``None`` when nothing qualifies.
    """
    viable = sorted(
        (p for p in points if p.feasible and p.seconds <= ref.seconds),
        key=lambda p: (p.energy_j, p.seconds, p.config_name, p.version),
    )
    if not viable:
        return None
    best = viable[0]
    return best.energy_j, best


# ---------------------------------------------------------------------------
# model-only speedup helper (the whatif/sensitivity seam)
# ---------------------------------------------------------------------------


def opt_over_serial(
    benchmark: str,
    platforms: dict,
    *,
    precision: Precision = Precision.SINGLE,
    scale: float = 0.5,
    seed: int = 1234,
    serial: str = "first",
) -> dict:
    """Model-only Opt-over-Serial speedup per platform variant.

    The single batched-pricing path behind :func:`repro.whatif.estimate_speedups`
    and the sensitivity probes: every number comes from each platform's
    ``pricing_model()`` — tuner pricing for the Opt candidate, the CPU
    pricer for the Serial baseline — with no functional NumPy execution
    and no meter.  ``serial="first"`` takes the baseline from the first
    platform (comparable speedups across variants, the what-if
    convention); ``serial="each"`` re-prices it per platform (the
    sensitivity convention, where the CPU side is perturbed too).
    ``None`` marks a variant with no feasible Opt candidate.
    """
    from .pricing.grid import estimate_cpu_seconds, estimate_opt_seconds

    if not platforms:
        raise ValueError("need at least one platform")
    if serial not in ("first", "each"):
        raise ValueError(f"serial must be 'first' or 'each', got {serial!r}")
    out: dict = {}
    serial_seconds = None
    for name, platform in platforms.items():
        bench = create(
            benchmark, precision=precision, scale=scale, seed=seed, platform=platform
        )
        if serial == "each" or serial_seconds is None:
            serial_seconds = estimate_cpu_seconds(bench)
        opt_seconds = estimate_opt_seconds(bench)
        out[name] = None if opt_seconds is None else serial_seconds / opt_seconds
    return out
