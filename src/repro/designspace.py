"""Design-space hypercube: batch-price many SoC configs, emit Pareto data.

The ROADMAP's question — *"what Mali would beat the 2×A15 at equal
energy?"* — needs the full (configs × benchmarks × versions ×
vector-widths × precision) hypercube priced cheaply.  Looping the
per-config :class:`~repro.pricing.grid.PlatformPricing` facade is
correct but pays the whole grid walk once per config; this module
evaluates the hypercube as *stacked* NumPy evaluations instead:

* the cell grid (CPU Serial/OpenMP cells + every autotuner candidate of
  every benchmark, compiled once — kernels are config-independent) is
  built a single time by :class:`DesignSpace`;
* :class:`~repro.mali.timing.GpuConfigStack` and
  :class:`~repro.cpu.pricing.CpuConfigStack` hoist every config-invariant
  quantity, so each SoC config costs a few whole-grid array passes;
* board power comes from :func:`~repro.power.rails.stack_watts` over the
  row arrays.

Every lane is bitwise-identical to pricing the same cell through the
facade of that config's platform (``facade_rows`` *is* that loop, kept
as the reference engine and the benchmark baseline).

The **Opt** version of a (config, benchmark, precision) point is the
feasible candidate minimizing ``seconds × launches`` — the autotuner's
currency over the main-kernel candidate set.  Multi-kernel benchmarks
(hist's merge stage, red's second stage) price their main kernel here;
the full multi-stage ``iteration_pricer`` refinement stays the
campaign path's job.  Candidates whose kernels exceed a config's scaled
register file are infeasible on that config (``CL_OUT_OF_RESOURCES``),
which is how the paper's DP register-exhaustion collapse shows up
across the space.

On top sit deterministic Pareto helpers: :func:`dominates`,
:func:`frontier` (the O(n log n) :func:`repro.pareto.skyline`),
:func:`dominated`, :func:`equal_energy_speedup` and
:func:`equal_time_energy`.

Large spaces run through **streaming evaluation**
(``evaluate_space(stream=True)``): configs are priced in fixed-size
chunks, each chunk's target-slice points feed per-precision
:class:`~repro.pareto.OnlineFrontier` accumulators, and dominated
points are dropped immediately — peak memory is O(chunk + frontier)
instead of O(space).  Before pricing, a vectorized roofline/rail
**lower bound** (:meth:`DesignSpace.opt_bounds`) prunes configs whose
best case is already dominated by the current frontier; pruning never
changes the frontier (the bound under-estimates both objectives, and
domination is transitive).  ``jobs=N`` shards configs over workers
that each reduce locally and ship back only frontier candidates,
merged to results byte-identical to ``jobs=1``.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path

from .benchmarks.base import Precision, cpu_pricing_inputs
from .benchmarks.registry import PAPER_ORDER, create
from .calibration.exynos5250 import ExynosPlatform, default_platform
from .calibration.socspace import EXYNOS_5250, SoCConfig, default_space
from .compiler.regalloc import fits_register_file
from .errors import CLError, CompilerError
from .experiments.trace import JsonlTraceSink, Tracer, TraceSink
from .pareto import OnlineFrontier, point_key, skyline, skyline_reference
from .power.rails import Activity, ActivityKind, gpu_floor_watts, stack_watts
from .pricing.cells import MODE_OPENMP, MODE_SERIAL, CpuCell, GpuLaunchCell, TraceCell

#: version labels of a design point (Opt = best feasible GPU candidate)
VERSIONS = ("Serial", "OpenMP", "Opt")
#: pseudo-benchmark name of the across-benchmarks sum
AGGREGATE = "aggregate"

_PRECISIONS_DEFAULT = (Precision.SINGLE, Precision.DOUBLE)


@dataclass(frozen=True)
class DesignPoint:
    """One (config, benchmark, precision, version) cell of the hypercube.

    ``seconds`` is one timed iteration (``× launches`` for GPU
    versions); ``energy_j`` is ``seconds × watts`` of the meterless
    board-power model.  Infeasible points (no Opt candidate fits the
    config) carry ``inf`` seconds/energy and zero watts.
    """

    config_name: str
    benchmark: str
    precision: str
    version: str
    seconds: float
    watts: float
    energy_j: float
    feasible: bool = True


class _BenchCells:
    """Cell spans of one (benchmark, precision) group in the flat grid."""

    __slots__ = ("name", "precision", "cpu_start", "gpu_start", "gpu_stop", "launches")

    def __init__(self, name, precision, cpu_start, gpu_start, gpu_stop, launches):
        self.name = name
        self.precision = precision
        self.cpu_start = cpu_start
        self.gpu_start = gpu_start
        self.gpu_stop = gpu_stop
        self.launches = launches


class SpaceRows:
    """Aligned row arrays of one config over a :class:`DesignSpace` grid.

    GPU lanes follow the space's GPU cell order, CPU lanes its CPU cell
    order ([Serial, OpenMP] per group).  ``gpu_iter_seconds`` is
    ``seconds × launches`` (the Opt currency); infeasible GPU lanes are
    ``inf`` seconds/energy, zero watts.
    """

    __slots__ = (
        "gpu_feasible",
        "gpu_seconds",
        "gpu_iter_seconds",
        "gpu_watts",
        "gpu_energy",
        "cpu_seconds",
        "cpu_watts",
        "cpu_energy",
    )

    def __init__(self, **arrays):
        for name in self.__slots__:
            setattr(self, name, arrays[name])


class DesignSpace:
    """The prepared hypercube: one cell grid + config stacks, many configs.

    Construction compiles every autotuner candidate once (candidates
    whose kernels cannot allocate at all — the hard
    ``CL_OUT_OF_RESOURCES`` limit — are dropped for every config, same
    as the tuner) and builds the GPU/CPU config stacks.
    ``stacked_rows`` then prices one config in a few array passes;
    ``facade_rows`` prices the identical cells through that config's
    :class:`~repro.pricing.grid.PlatformPricing` facade, bitwise equal
    lane for lane.
    """

    def __init__(
        self,
        benchmarks=PAPER_ORDER,
        precisions=_PRECISIONS_DEFAULT,
        scale: float = 0.5,
        seed: int = 1234,
        base: ExynosPlatform | None = None,
    ) -> None:
        import numpy as np

        from .compiler.pipeline import compile_kernel
        from .cpu.pricing import CpuConfigStack
        from .mali.timing import GpuConfigStack
        from .ocl.driver import default_quirks, driver_local_size
        from .optimizations.autotune import _candidates

        self.base = base if base is not None else default_platform()
        self.benchmarks = tuple(benchmarks)
        self.precisions = tuple(precisions)
        self.scale = scale
        self.seed = seed

        quirks = (
            self.base.driver_quirks
            if self.base.driver_quirks is not None
            else default_quirks()
        )
        groups: list[_BenchCells] = []
        cpu_cells: list[CpuCell] = []
        gpu_cells: list[GpuLaunchCell] = []
        launches: list[int] = []
        for name in self.benchmarks:
            for precision in self.precisions:
                bench = create(
                    name, precision=precision, scale=scale, seed=seed, platform=self.base
                )
                _, mix, traits, n = cpu_pricing_inputs(bench)
                cpu_start = len(cpu_cells)
                cpu_cells.append(
                    CpuCell(mix=mix, mode=MODE_SERIAL, n_elements=n, traits=traits)
                )
                cpu_cells.append(
                    CpuCell(mix=mix, mode=MODE_OPENMP, n_elements=n, traits=traits)
                )
                gpu_start = len(gpu_cells)
                for options, local in _candidates(bench, include_naive=True):
                    try:
                        compiled = compile_kernel(
                            bench.kernel_ir(options), options, quirks=quirks
                        )
                    except (CompilerError, CLError):
                        continue  # infeasible on every config (baseline ISA)
                    base_items = max(1, -(-bench.elements() // compiled.elems_per_item))
                    loc = local or driver_local_size(
                        base_items, self.base.mali.max_work_group_size
                    )
                    n_items = -(-base_items // loc) * loc
                    gtraits = bench.gpu_traits(options)
                    gpu_cells.append(
                        GpuLaunchCell(
                            compiled=compiled,
                            traits=gtraits,
                            n_items=n_items,
                            local_size=loc,
                        )
                    )
                    launches.append(gtraits.launches)
                groups.append(
                    _BenchCells(
                        name,
                        precision.value,
                        cpu_start,
                        gpu_start,
                        len(gpu_cells),
                        tuple(launches[gpu_start:]),
                    )
                )
        self.groups = groups
        self.cpu_cells = tuple(cpu_cells)
        self.gpu_cells = tuple(gpu_cells)
        self._launches_f = np.asarray([float(l) for l in launches])

        dram = self.base.dram_model()
        self._gpu_stack = (
            GpuConfigStack(self.gpu_cells, self.base.mali, dram, self.base.gpu_caches())
            if self.gpu_cells
            else None
        )
        self._cpu_stack = CpuConfigStack(
            self.cpu_cells, self.base.cpu, dram, self.base.cpu_caches()
        )
        self._bounds = None  # lazy opt_bounds tables

    # ------------------------------------------------------------------
    def stacked_rows(self, config: SoCConfig) -> SpaceRows:
        """Row arrays of one config via the config-axis stacks."""
        import numpy as np

        platform = config.platform(self.base)
        dram = platform.dram_model()
        rails = platform.rails

        c = self._cpu_stack.rows(platform.cpu, dram)
        cpu_watts = stack_watts(
            rails,
            ActivityKind.CPU,
            dram_bandwidth=c.dram_bandwidth,
            active_cpu_cores=c.active_cores,
            cpu_ipc=c.ipc,
        )
        cpu_energy = c.seconds * cpu_watts

        if self._gpu_stack is not None:
            g = self._gpu_stack.rows(platform.mali, dram)
            watts = stack_watts(
                rails,
                ActivityKind.GPU_KERNEL,
                dram_bandwidth=g.dram_bandwidth,
                gpu_alu_utilization=g.alu_utilization,
                gpu_ls_utilization=g.ls_utilization,
            )
            gpu_watts = np.where(g.feasible, watts, 0.0)
            gpu_iter = g.seconds * self._launches_f
            with np.errstate(invalid="ignore"):
                gpu_energy = np.where(g.feasible, gpu_iter * gpu_watts, np.inf)
            gpu_feasible = g.feasible
            gpu_seconds = g.seconds
        else:
            gpu_feasible = np.zeros(0, dtype=bool)
            gpu_seconds = gpu_iter = gpu_watts = gpu_energy = np.zeros(0)
        return SpaceRows(
            gpu_feasible=gpu_feasible,
            gpu_seconds=gpu_seconds,
            gpu_iter_seconds=gpu_iter,
            gpu_watts=gpu_watts,
            gpu_energy=gpu_energy,
            cpu_seconds=c.seconds,
            cpu_watts=cpu_watts,
            cpu_energy=cpu_energy,
        )

    def facade_rows(self, config: SoCConfig) -> SpaceRows:
        """Row arrays of one config via its per-platform pricing facade.

        The loop-over-facades reference engine: one
        :class:`~repro.pricing.grid.PlatformPricing` per config, cells
        pre-filtered by the same register-file predicate the stack uses,
        power through the facade's batched trace pricing.
        """
        import numpy as np

        platform = config.platform(self.base)
        pricing = platform.pricing_model()
        rf_scale = platform.mali.register_file_scale

        cpu_rows = pricing.cpu.price(self.cpu_cells)
        feasible = [
            fits_register_file(cell.compiled.registers, rf_scale)
            for cell in self.gpu_cells
        ]
        idx = [i for i, ok in enumerate(feasible) if ok]
        timings = pricing.gpu.price([self.gpu_cells[i] for i in idx])

        trace_cells = []
        for i, t in zip(idx, timings):
            duration = t.seconds * self.gpu_cells[i].traits.launches
            trace_cells.append(
                TraceCell(
                    (
                        Activity(
                            kind=ActivityKind.GPU_KERNEL,
                            duration_s=duration,
                            gpu_alu_utilization=t.alu_utilization,
                            gpu_ls_utilization=t.ls_utilization,
                            dram_bandwidth=t.dram_bandwidth,
                        ),
                    )
                )
            )
        for r in cpu_rows:
            trace_cells.append(
                TraceCell(
                    (
                        Activity(
                            kind=ActivityKind.CPU,
                            duration_s=r.seconds,
                            active_cpu_cores=r.active_cores,
                            cpu_ipc=r.ipc,
                            dram_bandwidth=r.dram_bandwidth,
                        ),
                    )
                )
            )
        traces = pricing.power.price(trace_cells)

        width = len(self.gpu_cells)
        gpu_feasible = np.asarray(feasible, dtype=bool)
        gpu_seconds = np.full(width, np.inf)
        gpu_iter = np.full(width, np.inf)
        gpu_watts = np.zeros(width)
        gpu_energy = np.full(width, np.inf)
        for k, (i, t) in enumerate(zip(idx, timings)):
            trace = traces[k]
            gpu_seconds[i] = t.seconds
            gpu_iter[i] = t.seconds * self.gpu_cells[i].traits.launches
            gpu_watts[i] = trace.segments[0].watts
            gpu_energy[i] = trace.energy_j
        cpu_seconds = np.asarray([r.seconds for r in cpu_rows])
        cpu_watts = np.asarray(
            [traces[len(idx) + j].segments[0].watts for j in range(len(cpu_rows))]
        )
        cpu_energy = np.asarray(
            [traces[len(idx) + j].energy_j for j in range(len(cpu_rows))]
        )
        return SpaceRows(
            gpu_feasible=gpu_feasible,
            gpu_seconds=gpu_seconds,
            gpu_iter_seconds=gpu_iter,
            gpu_watts=gpu_watts,
            gpu_energy=gpu_energy,
            cpu_seconds=cpu_seconds,
            cpu_watts=cpu_watts,
            cpu_energy=cpu_energy,
        )

    def rows(self, config: SoCConfig, engine: str = "stacked") -> SpaceRows:
        if engine == "stacked":
            return self.stacked_rows(config)
        if engine == "facade":
            return self.facade_rows(config)
        raise ValueError(f"unknown engine {engine!r}; expected 'stacked' or 'facade'")

    # ------------------------------------------------------------------
    def points(self, config: SoCConfig, rows: SpaceRows) -> list[DesignPoint]:
        """Design points of one config from its row arrays.

        Shared by both engines, so point equality reduces to row
        identity.  Emits [Serial, OpenMP, Opt] per (benchmark,
        precision) group, then per-precision aggregates (sums across
        benchmarks; an aggregate Opt is infeasible if any benchmark's
        is).
        """
        import numpy as np

        pts: list[DesignPoint] = []
        agg: dict[tuple[str, str], list] = {}  # (precision, version) -> [s, e, ok]
        for bc in self.groups:
            for version, lane in (("Serial", bc.cpu_start), ("OpenMP", bc.cpu_start + 1)):
                seconds = float(rows.cpu_seconds[lane])
                watts = float(rows.cpu_watts[lane])
                energy = float(rows.cpu_energy[lane])
                pts.append(
                    DesignPoint(
                        config_name=config.name,
                        benchmark=bc.name,
                        precision=bc.precision,
                        version=version,
                        seconds=seconds,
                        watts=watts,
                        energy_j=energy,
                    )
                )
                acc = agg.setdefault((bc.precision, version), [0.0, 0.0, True])
                acc[0] += seconds
                acc[1] += energy
            span = slice(bc.gpu_start, bc.gpu_stop)
            feas = rows.gpu_feasible[span]
            if feas.size and bool(feas.any()):
                j = int(np.argmin(rows.gpu_iter_seconds[span]))
                seconds = float(rows.gpu_iter_seconds[span][j])
                watts = float(rows.gpu_watts[span][j])
                energy = float(rows.gpu_energy[span][j])
                ok = True
            else:
                seconds, watts, energy, ok = float("inf"), 0.0, float("inf"), False
            pts.append(
                DesignPoint(
                    config_name=config.name,
                    benchmark=bc.name,
                    precision=bc.precision,
                    version="Opt",
                    seconds=seconds,
                    watts=watts,
                    energy_j=energy,
                    feasible=ok,
                )
            )
            acc = agg.setdefault((bc.precision, "Opt"), [0.0, 0.0, True])
            acc[0] += seconds
            acc[1] += energy
            acc[2] = acc[2] and ok
        for precision in dict.fromkeys(bc.precision for bc in self.groups):
            for version in VERSIONS:
                seconds, energy, ok = agg[(precision, version)]
                watts = energy / seconds if ok and seconds > 0 else 0.0
                pts.append(
                    DesignPoint(
                        config_name=config.name,
                        benchmark=AGGREGATE,
                        precision=precision,
                        version=version,
                        seconds=seconds,
                        watts=watts,
                        energy_j=energy,
                        feasible=ok,
                    )
                )
        return pts

    # ------------------------------------------------------------------
    def evaluate(
        self, configs, engine: str = "stacked"
    ) -> tuple[DesignPoint, ...]:
        """Points of many configs, in config order (single process)."""
        out: list[DesignPoint] = []
        for config in configs:
            out.extend(self.points(config, self.rows(config, engine)))
        return tuple(out)

    # ------------------------------------------------------------------
    def _bound_tables(self):
        """Lazy per-group tables behind :meth:`opt_bounds`."""
        import numpy as np

        tables = self._bounds
        if tables is None:
            starts = np.asarray([bc.gpu_start for bc in self.groups], dtype=np.intp)
            empty = np.asarray(
                [bc.gpu_stop == bc.gpu_start for bc in self.groups], dtype=bool
            )
            by_prec: dict[str, list[int]] = {}
            for g, bc in enumerate(self.groups):
                by_prec.setdefault(bc.precision, []).append(g)
            tables = self._bounds = (starts, empty, by_prec, {}, {})
        return tables

    def _group_infeasible(self, register_file_scale: float):
        """Per-group flag: no candidate fits this register-file scale.

        Exact, not a bound — :meth:`points` marks a group's Opt
        infeasible iff no cell of its span is feasible, and feasibility
        depends on the config only through ``register_file_scale``
        (the same :meth:`~repro.mali.timing.GpuConfigStack._tpc_for`
        predicate the pricing path evaluates).
        """
        import numpy as np

        starts, empty, _, _, infeas_cache = self._bound_tables()
        found = infeas_cache.get(register_file_scale)
        if found is None:
            feas_g, _ = self._gpu_stack._tpc_for(register_file_scale)
            feas = feas_g[self._gpu_stack._gidx]
            any_feas = np.logical_or.reduceat(feas, starts)
            found = infeas_cache[register_file_scale] = ~any_feas | empty
        return found

    def opt_bounds(self, configs, benchmark: str = AGGREGATE):
        """Vectorized per-config lower bounds on the Opt design points.

        Returns ``{precision: (seconds_lb, energy_lb)}`` — float64
        arrays aligned with ``configs`` — such that for every config
        the ``(benchmark, precision, "Opt")`` point of *either* engine
        satisfies ``seconds_lb <= point.seconds`` and ``energy_lb <=
        point.energy_j`` rigorously in IEEE-754 (infeasible points are
        ``inf``, trivially above any bound).  This is the pruning
        oracle: if a bound is strictly dominated by a real evaluated
        point, the config's actual Opt point is strictly dominated too
        (strict inequalities carry through ``bound <= actual``), so
        skipping it can never change the frontier.

        Construction per config: the group minimum over the stack's
        roofline floor (:meth:`~repro.mali.timing.GpuConfigStack.floor_seconds`
        times launches) bounds the group's Opt seconds — the minimum
        over *all* candidates under-estimates the minimum over the
        feasible subset; the rail floor
        (:func:`~repro.power.rails.gpu_floor_watts` of the rail-scaled
        config) bounds its watts; per-precision aggregates accumulate
        in the exact group order :meth:`points` uses, so the same-order
        float sums stay monotone term for term.
        """
        import numpy as np

        configs = tuple(configs)
        starts, empty, by_prec, dram_cache, _ = self._bound_tables()
        n = len(configs)
        if self._gpu_stack is None or not n:
            inf = np.full(n, np.inf)
            return {prec: (inf, inf.copy()) for prec in by_prec}

        rails = self.base.rails
        rail_scale = np.asarray([c.rail_scale for c in configs])
        # gpu_floor_watts over the rail-scaled configs, vectorized in
        # the same operation order socspace's replace() + the scalar
        # helper produce (board_idle stays unscaled)
        wfloor = (
            rails.board_idle_w + rails.host_polling_w * rail_scale
        ) + rails.gpu_base_w * rail_scale

        cores = np.asarray([float(c.gpu_cores) for c in configs])
        clock = np.asarray([c.gpu_clock_hz for c in configs])
        gmin = np.empty((n, len(self.groups)))
        by_dram: dict[tuple, list[int]] = {}
        for i, c in enumerate(configs):
            by_dram.setdefault((c.dram_gbps, c.register_file_scale), []).append(i)
        for (gbps, rf_scale), idxs in by_dram.items():
            dram = dram_cache.get(gbps)
            if dram is None:
                dram = dram_cache[gbps] = (
                    configs[idxs[0]].platform(self.base).dram_model()
                )
            floor = self._gpu_stack.floor_seconds(
                dram,
                shader_cores=cores[idxs],
                clock_hz=clock[idxs],
                register_file_scale=rf_scale,
            )
            iter_floor = floor * self._launches_f[None, :]
            # groups tile the gpu-cell axis contiguously in order, so a
            # reduceat over the starts is the per-group min; empty
            # groups (reduceat would alias the next span) are masked
            gmin[idxs, :] = np.minimum.reduceat(iter_floor, starts, axis=1)
        if empty.any():
            gmin[:, empty] = np.inf
        # provable register-file infeasibility: the group's Opt point
        # is exactly infeasible (inf seconds), not merely bounded
        by_rf: dict[float, list[int]] = {}
        for i, c in enumerate(configs):
            by_rf.setdefault(c.register_file_scale, []).append(i)
        for rf_scale, idxs in by_rf.items():
            infeasible = self._group_infeasible(rf_scale)
            if infeasible.any():
                gmin[np.ix_(idxs, np.flatnonzero(infeasible))] = np.inf

        out: dict[str, tuple] = {}
        for prec, gids in by_prec.items():
            if benchmark != AGGREGATE:
                gids = [g for g in gids if self.groups[g].name == benchmark]
            t = np.zeros(n)
            e = np.zeros(n)
            for g in gids:
                t = t + gmin[:, g]
                e = e + gmin[:, g] * wfloor
            out[prec] = (t, e)
        return out


# ---------------------------------------------------------------------------
# multi-process driver
# ---------------------------------------------------------------------------


def _eval_worker(payload) -> tuple[DesignPoint, ...]:
    """Worker: rebuild the space locally, evaluate a config chunk."""
    benchmarks, precision_values, scale, seed, engine, configs = payload
    space = DesignSpace(
        benchmarks=benchmarks,
        precisions=tuple(Precision(v) for v in precision_values),
        scale=scale,
        seed=seed,
    )
    return space.evaluate(configs, engine)


# ---------------------------------------------------------------------------
# streaming driver (chunked evaluation + pruning + online reduction)
# ---------------------------------------------------------------------------


def _resolve_trace(trace):
    """Normalize ``trace`` (sink, path or None) like the campaign engine."""
    if trace is None:
        return TraceSink(), False
    if isinstance(trace, (str, Path)):
        return JsonlTraceSink(trace), True
    return trace, False


def _stream_shard(
    space: DesignSpace,
    configs,
    *,
    engine: str,
    chunk_size: int,
    prune: bool,
    target_benchmark: str,
    target_version: str,
    keep_names: frozenset,
    frontiers: dict | None = None,
    tracer: Tracer | None = None,
):
    """Stream one config shard through chunked pricing + online reduction.

    Returns ``(kept_points, frontiers, evaluated, pruned, peak)``:
    full point lists of the ``keep_names`` configs (shard order), one
    :class:`~repro.pareto.OnlineFrontier` per precision over the
    ``(target_benchmark, precision, target_version)`` slice,
    evaluated/pruned config counts and the peak number of simultaneously
    resident :class:`DesignPoint` objects (chunk + kept + frontier) —
    the O(chunk + frontier) memory-model witness.
    """
    if frontiers is None:
        frontiers = {p.value: OnlineFrontier(key=_sort_key) for p in space.precisions}
    evaluated = 0
    pruned = 0
    peak = 0
    kept_by_name: dict[str, list[DesignPoint]] = {}
    can_prune = prune and target_version == "Opt"
    inf = float("inf")
    n_kept = 0

    def _evaluate(config) -> int:
        nonlocal evaluated, n_kept
        pts = space.points(config, space.rows(config, engine))
        evaluated += 1
        if config.name in keep_names:
            kept_by_name[config.name] = pts
            n_kept += len(pts)
        for p in pts:
            if p.benchmark == target_benchmark and p.version == target_version:
                frontiers[p.precision].add(p)
        return len(pts)

    # bound-only first pass: cache each chunk's bounds and seed the
    # frontier with the most promising configs (per precision, the
    # bound-time and bound-energy argmins), so the main sweep prunes
    # against a near-final frontier from its very first chunk.  Probe
    # choice only affects *which* dominated configs get skipped — the
    # frontier itself is order-independent and pruning is sound — so
    # any probe set yields the same result points.
    chunk_starts = range(0, len(configs), chunk_size)
    chunk_bounds: list[dict] = []
    probe_idx: list[int] = []
    if can_prune:
        best: dict[tuple, tuple] = {}  # (precision, axis) -> (value, index)
        for start in chunk_starts:
            chunk = configs[start : start + chunk_size]
            bounds = space.opt_bounds(chunk, benchmark=target_benchmark)
            chunk_bounds.append(bounds)
            for prec, (t, e) in bounds.items():
                for axis, arr in (("t", t), ("e", e)):
                    i = int(arr.argmin())
                    value = float(arr[i])
                    if value < inf and value < best.get((prec, axis), (inf,))[0]:
                        best[(prec, axis)] = (value, start + i)
        probe_idx = sorted({i for _, i in best.values()})
        probe_points = sum(_evaluate(configs[i]) for i in probe_idx)
        peak = probe_points + sum(len(f) for f in frontiers.values())
    probes = set(probe_idx)

    for chunk_no, start in enumerate(chunk_starts):
        chunk = configs[start : start + chunk_size]
        chunk_pruned = 0
        if can_prune:
            bounds = chunk_bounds[chunk_no]
            survivors = []
            for i, config in enumerate(chunk):
                if start + i in probes:
                    continue  # already evaluated while seeding
                # skippable iff, for every precision, the config's
                # target point provably cannot join the frontier:
                # either its bound is exactly infeasible, or a real
                # frontier member strictly dominates the bound (and by
                # transitivity the actual point, bound <= actual)
                if config.name not in keep_names and all(
                    t[i] == inf
                    or (
                        len(frontiers[prec])
                        and frontiers[prec].strictly_dominates(
                            float(t[i]), float(e[i])
                        )
                    )
                    for prec, (t, e) in bounds.items()
                ):
                    pruned += 1
                    chunk_pruned += 1
                else:
                    survivors.append(config)
        else:
            survivors = list(chunk)
        chunk_points = sum(_evaluate(config) for config in survivors)
        resident = chunk_points + n_kept + sum(len(f) for f in frontiers.values())
        peak = max(peak, resident)
        if tracer is not None:
            tracer.emit(
                "space_chunk_finished",
                detail={
                    "configs": len(chunk),
                    "evaluated": len(survivors),
                    "pruned": chunk_pruned,
                    "frontier": {p: len(f) for p, f in frontiers.items()},
                    "resident_points": resident,
                },
            )
    # kept points come back in input-config order regardless of the
    # evaluation order above
    kept = [p for c in configs if c.name in kept_by_name for p in kept_by_name[c.name]]
    return kept, frontiers, evaluated, pruned, peak


def _stream_worker(payload):
    """Worker: rebuild the space, stream a shard, ship candidates only.

    The shipped payload is the worker's local frontier (the only points
    that can still reach the global frontier: local pruning and local
    eviction both discard only globally-dominated points) plus the full
    point lists of the keep configs — O(chunk + frontier) data instead
    of the shard's whole hypercube.
    """
    (
        benchmarks,
        precision_values,
        scale,
        seed,
        engine,
        configs,
        chunk_size,
        prune,
        target_benchmark,
        target_version,
        keep_names,
    ) = payload
    space = DesignSpace(
        benchmarks=benchmarks,
        precisions=tuple(Precision(v) for v in precision_values),
        scale=scale,
        seed=seed,
    )
    kept, frontiers, evaluated, pruned, peak = _stream_shard(
        space,
        configs,
        engine=engine,
        chunk_size=chunk_size,
        prune=prune,
        target_benchmark=target_benchmark,
        target_version=target_version,
        keep_names=frozenset(keep_names),
    )
    candidates = {prec: f.points() for prec, f in frontiers.items()}
    return tuple(kept), candidates, evaluated, pruned, peak


def _stream_result(
    configs,
    benchmarks,
    precisions,
    frontiers,
    kept,
    keep_names,
    *,
    scale,
    seed,
    evaluated,
    pruned,
    peak,
    chunk_size,
    target_benchmark,
    target_version,
) -> DesignSpaceResult:
    """Assemble the streamed result (shared by jobs=1 and jobs=N).

    Retained points are the keep configs' full lists (input config
    order) followed by each precision's frontier (``precisions``
    order, keep configs' entries deduplicated); retained configs are
    the input-order subset that still owns at least one point.
    """
    points: list[DesignPoint] = list(kept)
    front_names: set[str] = set()
    for precision in precisions:
        for p in frontiers[precision.value].points():
            front_names.add(p.config_name)
            if p.config_name not in keep_names:
                points.append(p)
    retained = tuple(
        c for c in configs if c.name in keep_names or c.name in front_names
    )
    return DesignSpaceResult(
        configs=retained,
        digests=tuple(c.digest() for c in retained),
        points=tuple(points),
        benchmarks=tuple(benchmarks),
        precisions=tuple(p.value for p in precisions),
        scale=scale,
        seed=seed,
        mode="stream",
        evaluated=evaluated,
        pruned=pruned,
        peak_resident=peak,
        chunk_size=chunk_size,
        target_benchmark=target_benchmark,
        target_version=target_version,
    )


@dataclass(frozen=True)
class DesignSpaceResult:
    """The evaluated hypercube: configs, digests and every design point.

    ``mode`` is ``"materialize"`` (every point of every config) or
    ``"stream"`` (only the kept configs' full point lists plus the
    per-precision target-slice frontiers survive; everything else was
    discarded while streaming).  In stream mode ``configs`` /
    ``digests`` cover only the retained configs, ``evaluated`` +
    ``pruned`` equals the size of the swept space, and
    ``peak_resident`` is the observed memory-model witness (max
    simultaneously resident points: chunk + kept + frontier).
    """

    configs: tuple[SoCConfig, ...]
    digests: tuple[str, ...]
    points: tuple[DesignPoint, ...]
    benchmarks: tuple[str, ...]
    precisions: tuple[str, ...]
    scale: float
    seed: int
    mode: str = "materialize"
    evaluated: int = 0
    pruned: int = 0
    peak_resident: int = 0
    chunk_size: int | None = None
    target_benchmark: str | None = None
    target_version: str | None = None

    def frontier_points(
        self, precision: str = "single", benchmark: str | None = None,
        version: str | None = None,
    ) -> tuple[DesignPoint, ...]:
        """Frontier of one slice (defaults to the streamed target slice)."""
        return frontier(
            self.select(
                benchmark=benchmark or self.target_benchmark or AGGREGATE,
                precision=precision,
                version=version or self.target_version or "Opt",
            )
        )

    def describe(self) -> str:
        """Human summary: space shape, prune counts, frontier sizes."""
        total = self.evaluated + self.pruned
        lines = [
            f"design space: {total} configs x {len(self.benchmarks)} benchmarks"
            f" x {len(self.precisions)} precisions, mode={self.mode}"
        ]
        if self.mode == "stream":
            lines.append(
                f"  streamed {self.target_benchmark}/{self.target_version}"
                f" in chunks of {self.chunk_size}: {self.evaluated} evaluated,"
                f" {self.pruned} pruned"
                f" ({100.0 * self.pruned / total if total else 0.0:.1f}%),"
                f" peak resident points {self.peak_resident}"
            )
        else:
            lines.append(
                f"  materialized {len(self.points)} points"
                f" ({sum(p.feasible for p in self.points)} feasible)"
            )
        for precision in self.precisions:
            front = self.frontier_points(precision=precision)
            lines.append(f"  frontier[{precision}]: {len(front)} points")
        return "\n".join(lines)

    def select(
        self,
        benchmark: str = AGGREGATE,
        precision: str = "single",
        version: str | None = "Opt",
        feasible_only: bool = False,
    ) -> tuple[DesignPoint, ...]:
        """Points of one hypercube slice, in evaluation order."""
        return tuple(
            p
            for p in self.points
            if p.benchmark == benchmark
            and p.precision == precision
            and (version is None or p.version == version)
            and (not feasible_only or p.feasible)
        )

    def point(self, config_name, benchmark, precision, version) -> DesignPoint:
        for p in self.points:
            if (
                p.config_name == config_name
                and p.benchmark == benchmark
                and p.precision == precision
                and p.version == version
            ):
                return p
        raise KeyError(
            f"no point ({config_name!r}, {benchmark!r}, {precision!r}, {version!r})"
        )

    def to_dict(self) -> dict:
        """JSON-ready form (CLI output; ``inf`` encoded as null)."""

        def num(x):
            return x if x == x and x not in (float("inf"), float("-inf")) else None

        return {
            "benchmarks": list(self.benchmarks),
            "precisions": list(self.precisions),
            "scale": self.scale,
            "seed": self.seed,
            "mode": self.mode,
            "evaluated": self.evaluated,
            "pruned": self.pruned,
            "peak_resident": self.peak_resident,
            "chunk_size": self.chunk_size,
            "target_benchmark": self.target_benchmark,
            "target_version": self.target_version,
            "configs": [
                {
                    "name": c.name,
                    "digest": d,
                    "gpu_cores": c.gpu_cores,
                    "gpu_clock_hz": c.gpu_clock_hz,
                    "cpu_cores": c.cpu_cores,
                    "cpu_clock_hz": c.cpu_clock_hz,
                    "dram_gbps": c.dram_gbps,
                    "register_file_scale": c.register_file_scale,
                    "rail_scale": c.rail_scale,
                }
                for c, d in zip(self.configs, self.digests)
            ],
            "points": [
                {
                    "config": p.config_name,
                    "benchmark": p.benchmark,
                    "precision": p.precision,
                    "version": p.version,
                    "seconds": num(p.seconds),
                    "watts": num(p.watts),
                    "energy_j": num(p.energy_j),
                    "feasible": p.feasible,
                }
                for p in self.points
            ],
        }


def evaluate_space(
    configs=None,
    benchmarks=PAPER_ORDER,
    precisions=_PRECISIONS_DEFAULT,
    scale: float = 0.5,
    seed: int = 1234,
    jobs: int = 1,
    engine: str = "stacked",
    stream: bool = False,
    chunk_size: int = 256,
    prune: bool = True,
    target_benchmark: str = AGGREGATE,
    target_version: str = "Opt",
    keep_configs=(EXYNOS_5250.name,),
    trace=None,
    space: DesignSpace | None = None,
) -> DesignSpaceResult:
    """Evaluate the full hypercube over a config family.

    ``configs`` defaults to :func:`~repro.calibration.socspace.default_space`
    (64 SoCs around the Exynos 5250).  ``jobs > 1`` shards configs over
    a process pool; each worker rebuilds the cell grid locally, and the
    output is byte-identical to ``jobs=1`` (configs are independent and
    reassembled in input order).

    ``stream=True`` switches to the chunked large-space driver: configs
    are priced ``chunk_size`` at a time, only the
    ``(target_benchmark, precision, target_version)`` slice feeds
    per-precision :class:`~repro.pareto.OnlineFrontier` reducers, and
    non-frontier points are discarded immediately — peak memory is
    O(chunk + frontier), not O(space).  ``prune=True`` additionally
    skips pricing configs whose :meth:`DesignSpace.opt_bounds` lower
    bound is already strictly dominated on *every* precision (sound
    only for the Opt version; other targets evaluate everything).  The
    result retains the full point lists of ``keep_configs`` (reference
    points for the equal-energy/equal-time queries; never pruned) plus
    the frontier points; the streamed frontier is identical to
    ``frontier()`` over a materialized run — pruned and discarded
    points are all strictly dominated.  ``trace`` (a
    :class:`~repro.experiments.trace.TraceSink` or a JSONL path) gets
    ``space_started`` / ``space_chunk_finished`` / ``space_finished``
    progress events.

    ``space`` optionally reuses a prebuilt :class:`DesignSpace` (same
    benchmarks/precisions/scale/seed) so repeated sweeps over one grid
    pay the compile-and-hoist build once; workers of ``jobs > 1`` runs
    still rebuild locally.
    """
    configs = tuple(configs) if configs is not None else default_space()
    if not configs:
        raise ValueError("need at least one SoCConfig")
    names = [c.name for c in configs]
    if len(set(names)) != len(names):
        raise ValueError("SoCConfig names must be unique")
    precisions = tuple(precisions)
    benchmarks = tuple(benchmarks)
    if space is not None and (
        space.benchmarks != benchmarks
        or space.precisions != precisions
        or space.scale != scale
        or space.seed != seed
    ):
        raise ValueError(
            "prebuilt space does not match the requested grid "
            "(benchmarks/precisions/scale/seed)"
        )
    if not stream:
        if jobs > 1 and len(configs) > 1:
            shards = min(jobs, len(configs))
            size = -(-len(configs) // shards)
            chunks = [configs[i : i + size] for i in range(0, len(configs), size)]
            payloads = [
                (
                    benchmarks,
                    tuple(p.value for p in precisions),
                    scale,
                    seed,
                    engine,
                    chunk,
                )
                for chunk in chunks
            ]
            points: list[DesignPoint] = []
            with ProcessPoolExecutor(max_workers=shards) as pool:
                for chunk_points in pool.map(_eval_worker, payloads):
                    points.extend(chunk_points)
            points = tuple(points)
        else:
            if space is None:
                space = DesignSpace(
                    benchmarks=benchmarks, precisions=precisions, scale=scale,
                    seed=seed,
                )
            points = space.evaluate(configs, engine)
        digests = tuple(c.digest() for c in configs)
        return DesignSpaceResult(
            configs=configs,
            digests=digests,
            points=tuple(points),
            benchmarks=benchmarks,
            precisions=tuple(p.value for p in precisions),
            scale=scale,
            seed=seed,
            evaluated=len(configs),
            peak_resident=len(points),
        )

    # ---- streaming mode ---------------------------------------------
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    if target_version not in VERSIONS:
        raise ValueError(f"target_version must be one of {VERSIONS}")
    if target_benchmark != AGGREGATE and target_benchmark not in benchmarks:
        raise ValueError(
            f"target_benchmark {target_benchmark!r} not in the evaluated "
            f"benchmarks (or {AGGREGATE!r})"
        )
    keep_names = frozenset(keep_configs or ())
    sink, owns_sink = _resolve_trace(trace)
    tracer = Tracer(sink)
    try:
        tracer.emit(
            "space_started",
            detail={
                "configs": len(configs),
                "chunk_size": chunk_size,
                "prune": bool(prune),
                "jobs": jobs,
                "target": f"{target_benchmark}/{target_version}",
            },
        )
        if jobs > 1 and len(configs) > 1:
            shards = min(jobs, len(configs))
            size = -(-len(configs) // shards)
            shard_configs = [
                configs[i : i + size] for i in range(0, len(configs), size)
            ]
            payloads = [
                (
                    benchmarks,
                    tuple(p.value for p in precisions),
                    scale,
                    seed,
                    engine,
                    shard,
                    chunk_size,
                    prune,
                    target_benchmark,
                    target_version,
                    tuple(keep_names),
                )
                for shard in shard_configs
            ]
            # merge order cannot matter: an OnlineFrontier's final set
            # is order-independent, and each worker ships every point
            # that can still reach the global frontier (local pruning
            # and eviction only discard globally-dominated points) —
            # so the merged frontier is byte-identical to jobs=1
            frontiers = {
                p.value: OnlineFrontier(key=_sort_key) for p in precisions
            }
            kept: list[DesignPoint] = []
            evaluated = pruned = peak = 0
            candidates = 0
            with ProcessPoolExecutor(max_workers=shards) as pool:
                for shard_no, (w_kept, w_cands, w_eval, w_pruned, w_peak) in enumerate(
                    pool.map(_stream_worker, payloads)
                ):
                    kept.extend(w_kept)
                    for prec, pts in w_cands.items():
                        frontiers[prec].update(pts)
                    evaluated += w_eval
                    pruned += w_pruned
                    peak = max(peak, w_peak)
                    candidates += sum(len(pts) for pts in w_cands.values())
                    tracer.emit(
                        "space_chunk_finished",
                        detail={
                            "shard": shard_no,
                            "configs": len(shard_configs[shard_no]),
                            "evaluated": w_eval,
                            "pruned": w_pruned,
                            "frontier": {
                                p: len(f) for p, f in frontiers.items()
                            },
                            "resident_points": w_peak,
                        },
                    )
            # the merge itself holds every shipped candidate at once
            peak = max(peak, candidates + len(kept))
        else:
            if space is None:
                space = DesignSpace(
                    benchmarks=benchmarks, precisions=precisions, scale=scale,
                    seed=seed,
                )
            kept, frontiers, evaluated, pruned, peak = _stream_shard(
                space,
                configs,
                engine=engine,
                chunk_size=chunk_size,
                prune=prune,
                target_benchmark=target_benchmark,
                target_version=target_version,
                keep_names=keep_names,
                tracer=tracer,
            )
        result = _stream_result(
            configs,
            benchmarks,
            precisions,
            frontiers,
            kept,
            keep_names,
            scale=scale,
            seed=seed,
            evaluated=evaluated,
            pruned=pruned,
            peak=peak,
            chunk_size=chunk_size,
            target_benchmark=target_benchmark,
            target_version=target_version,
        )
        tracer.emit(
            "space_finished",
            detail={
                "evaluated": result.evaluated,
                "pruned": result.pruned,
                "peak_resident": result.peak_resident,
                "frontier": {
                    p: len(f.points()) for p, f in frontiers.items()
                },
            },
        )
        return result
    finally:
        if owns_sink:
            sink.close()


# ---------------------------------------------------------------------------
# Pareto helpers (minimize seconds and energy)
# ---------------------------------------------------------------------------


def dominates(a: DesignPoint, b: DesignPoint) -> bool:
    """Pareto domination on (seconds, energy_j), both minimized."""
    return (
        a.seconds <= b.seconds
        and a.energy_j <= b.energy_j
        and (a.seconds < b.seconds or a.energy_j < b.energy_j)
    )


#: the deterministic point ordering shared by every Pareto helper
_sort_key = point_key


def frontier(points) -> tuple[DesignPoint, ...]:
    """The non-dominated feasible points, deterministically ordered.

    Sorted by (seconds, energy, config name, version); duplicate
    (seconds, energy) pairs all survive (none strictly dominates the
    other), so equal designs stay visible.  O(n log n) sort-based
    skyline, same point set as :func:`frontier_reference`.
    """
    return skyline(points, key=_sort_key)


def frontier_reference(points) -> tuple[DesignPoint, ...]:
    """The O(n²) all-pairs frontier — oracle and benchmark baseline."""
    return skyline_reference(points, key=_sort_key)


def dominated(points) -> tuple[DesignPoint, ...]:
    """The feasible points *not* on the frontier, same ordering.

    Membership is by sort key (value), not object identity: an
    equal-valued copy of a frontier point is itself a frontier tie and
    never lands in both sets.
    """
    points = tuple(points)
    front = set(map(_sort_key, frontier(points)))
    return tuple(
        sorted(
            (p for p in points if p.feasible and _sort_key(p) not in front),
            key=_sort_key,
        )
    )


def equal_energy_speedup(points, ref: DesignPoint):
    """Best speedup over ``ref`` among points spending no more energy.

    Returns ``(speedup, point)`` for the fastest feasible point with
    ``energy_j <= ref.energy_j`` (ties broken by the deterministic sort
    key), or ``None`` when nothing qualifies.
    """
    viable = sorted(
        (p for p in points if p.feasible and p.energy_j <= ref.energy_j),
        key=_sort_key,
    )
    if not viable:
        return None
    best = viable[0]
    return ref.seconds / best.seconds, best


def equal_time_energy(points, ref: DesignPoint):
    """Least energy among points at least as fast as ``ref``.

    Returns ``(energy_j, point)`` for the most frugal feasible point
    with ``seconds <= ref.seconds`` (deterministic tie-break), or
    ``None`` when nothing qualifies.
    """
    viable = sorted(
        (p for p in points if p.feasible and p.seconds <= ref.seconds),
        key=lambda p: (p.energy_j, p.seconds, p.config_name, p.version),
    )
    if not viable:
        return None
    best = viable[0]
    return best.energy_j, best


# ---------------------------------------------------------------------------
# frontier export (plotting interchange)
# ---------------------------------------------------------------------------


def export_frontier(
    result: DesignSpaceResult,
    path,
    *,
    benchmark: str | None = None,
    version: str | None = None,
    include_dominated: bool = False,
) -> int:
    """Write one slice's Pareto data for external plotting tools.

    One row per point and precision: config name, its content digest,
    the objective values and an ``on_frontier`` flag.  Format follows
    the extension — ``.csv`` writes CSV, anything else a JSON document
    ``{"benchmark", "version", "points": [...]}``.  ``benchmark`` /
    ``version`` default to the result's streamed target slice (or
    aggregate/Opt).  ``include_dominated`` adds the dominated feasible
    points the result still holds — the full story in materialize
    mode; in stream mode only the kept configs' dominated points
    remain (the rest were discarded while streaming).  Returns the row
    count.
    """
    import csv
    import json

    benchmark = benchmark or result.target_benchmark or AGGREGATE
    version = version or result.target_version or "Opt"
    digest_by_name = {c.name: d for c, d in zip(result.configs, result.digests)}
    rows = []
    for precision in result.precisions:
        pool = result.select(benchmark=benchmark, precision=precision, version=version)
        entries = [(p, True) for p in frontier(pool)]
        if include_dominated:
            entries.extend((p, False) for p in dominated(pool))
        for p, on_front in entries:
            rows.append(
                {
                    "config": p.config_name,
                    "digest": digest_by_name.get(p.config_name, ""),
                    "benchmark": p.benchmark,
                    "precision": p.precision,
                    "version": p.version,
                    "seconds": p.seconds,
                    "watts": p.watts,
                    "energy_j": p.energy_j,
                    "on_frontier": on_front,
                }
            )
    path = Path(path)
    if path.suffix.lower() == ".csv":
        with open(path, "w", newline="", encoding="utf-8") as fh:
            writer = csv.DictWriter(
                fh,
                fieldnames=[
                    "config",
                    "digest",
                    "benchmark",
                    "precision",
                    "version",
                    "seconds",
                    "watts",
                    "energy_j",
                    "on_frontier",
                ],
            )
            writer.writeheader()
            writer.writerows(rows)
    else:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(
                {"benchmark": benchmark, "version": version, "points": rows},
                fh,
                indent=2,
            )
            fh.write("\n")
    return len(rows)


# ---------------------------------------------------------------------------
# DVFS governor axis over the design space
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DvfsDesignPoint:
    """One (config, governor, precision) point of the DVFS-extended space.

    The target slice (a benchmark's — or the aggregate's — Opt version)
    is re-priced at the GPU operating point the governor settles on:
    ``seconds`` is the work time at that clock, ``watts`` the mean work
    power, ``energy_j`` the work energy — except for the deadline
    policies (``race_to_idle`` / ``pace_to_deadline``), whose energy is
    the full deadline-window figure: work at the chosen OPP plus the
    remaining slack at the board idle floor.  A point is infeasible when
    the slice has no feasible Opt candidate on the config, or when no
    OPP meets the deadline.
    """

    config_name: str
    governor: str
    precision: str
    opp_hz: float
    seconds: float
    watts: float
    energy_j: float
    feasible: bool = True


def _dvfs_key(p: DvfsDesignPoint):
    """Deterministic order for DVFS points (governor replaces version)."""
    return (p.seconds, p.energy_j, p.config_name, p.governor)


def _dvfs_opp_slices(space: DesignSpace, platform, dram, table, opp, benchmark):
    """Per-precision ``(seconds, watts, energy, feasible)`` of the target
    slice at one GPU operating point.

    Exactly the stacked engine's Opt selection (same argmin over
    ``seconds × launches``, same accumulation order for the aggregate),
    over a Mali config moved to the OPP's clock and rails scaled by the
    OPP's ``f · V²`` factor.  At the table's nominal OPP both are the
    base objects, so the slice is bitwise the fixed-frequency Opt point
    of :meth:`DesignSpace.points`.
    """
    import numpy as np
    from dataclasses import replace as _replace

    from .power import dvfs

    mali = platform.mali
    if opp.frequency_hz != mali.clock_hz:
        mali = _replace(mali, clock_hz=opp.frequency_hz)
    rails = dvfs.rails_at(platform.rails, gpu_table=table, gpu_opp=opp)
    g = space._gpu_stack.rows(mali, dram)
    watts = stack_watts(
        rails,
        ActivityKind.GPU_KERNEL,
        dram_bandwidth=g.dram_bandwidth,
        gpu_alu_utilization=g.alu_utilization,
        gpu_ls_utilization=g.ls_utilization,
    )
    gpu_iter = g.seconds * space._launches_f
    masked_watts = np.where(g.feasible, watts, 0.0)
    agg: dict[str, list] = {}
    per_bench: dict[str, tuple] = {}
    for bc in space.groups:
        span = slice(bc.gpu_start, bc.gpu_stop)
        feas = g.feasible[span]
        if feas.size and bool(feas.any()):
            j = int(np.argmin(gpu_iter[span]))
            seconds = float(gpu_iter[span][j])
            lane_watts = float(masked_watts[span][j])
            energy = seconds * lane_watts
            ok = True
        else:
            seconds, lane_watts, energy, ok = float("inf"), 0.0, float("inf"), False
        if bc.name == benchmark:
            per_bench[bc.precision] = (seconds, lane_watts, energy, ok)
        acc = agg.setdefault(bc.precision, [0.0, 0.0, True])
        acc[0] += seconds
        acc[1] += energy
        acc[2] = acc[2] and ok
    if benchmark != AGGREGATE:
        return per_bench
    out = {}
    for precision, (seconds, energy, ok) in agg.items():
        watts_p = energy / seconds if ok and seconds > 0 else 0.0
        out[precision] = (seconds, watts_p, energy, ok)
    return out


@dataclass(frozen=True)
class DvfsSpaceResult:
    """The governor-extended design space: one point per (config,
    governor, precision) over the target slice."""

    points: tuple[DvfsDesignPoint, ...]
    governors: tuple[str, ...]
    precisions: tuple[str, ...]
    benchmark: str
    deadline_s: float | None
    scale: float
    seed: int

    def select(
        self, governor: str | None = None, precision: str = "single"
    ) -> tuple[DvfsDesignPoint, ...]:
        """Points of one slice, in evaluation order."""
        return tuple(
            p
            for p in self.points
            if p.precision == precision
            and (governor is None or p.governor == governor)
        )

    def frontier_points(self, precision: str = "single") -> tuple[DvfsDesignPoint, ...]:
        """(seconds, energy) frontier over every (config, governor)."""
        return skyline(self.select(precision=precision), key=_dvfs_key)

    def deadline_pick(
        self, deadline_s: float | None = None, precision: str = "single"
    ) -> DvfsDesignPoint | None:
        """Least-energy (config, governor) meeting a time budget.

        The deadline-constrained Pareto query: among feasible points
        with ``seconds <= deadline_s`` (default: the sweep's own
        deadline), the minimum ``energy_j`` with the deterministic
        tie-break.  When the sweep includes deadline policies the pick
        is taken among those — their energies account for the whole
        deadline window, so they compare like for like — otherwise the
        frequency governors' work energies compete directly.  ``None``
        when nothing qualifies.
        """
        from .power import dvfs

        budget = deadline_s if deadline_s is not None else self.deadline_s
        if budget is None:
            raise ValueError("deadline_pick needs a deadline_s")
        pool = [
            p
            for p in self.select(precision=precision)
            if p.feasible and p.seconds <= budget
        ]
        windowed = [p for p in pool if p.governor in dvfs.DEADLINE_POLICIES]
        if windowed:
            pool = windowed
        viable = sorted(
            pool,
            key=lambda p: (p.energy_j, p.seconds, p.config_name, p.governor),
        )
        return viable[0] if viable else None

    def to_dict(self) -> dict:
        """JSON-ready form (``inf`` encoded as null)."""

        def num(x):
            return x if x == x and x not in (float("inf"), float("-inf")) else None

        return {
            "benchmark": self.benchmark,
            "governors": list(self.governors),
            "precisions": list(self.precisions),
            "deadline_s": self.deadline_s,
            "scale": self.scale,
            "seed": self.seed,
            "points": [
                {
                    "config": p.config_name,
                    "governor": p.governor,
                    "precision": p.precision,
                    "opp_hz": p.opp_hz,
                    "seconds": num(p.seconds),
                    "watts": num(p.watts),
                    "energy_j": num(p.energy_j),
                    "feasible": p.feasible,
                }
                for p in self.points
            ],
        }


def evaluate_dvfs(
    configs=None,
    benchmarks=PAPER_ORDER,
    precisions=(Precision.SINGLE,),
    scale: float = 0.5,
    seed: int = 1234,
    governors=None,
    benchmark: str = AGGREGATE,
    deadline_s: float | None = None,
    space: DesignSpace | None = None,
) -> DvfsSpaceResult:
    """Sweep the governor axis across a SoC config family.

    For every config the Mali OPP table is rescaled so its top point is
    the config's shader clock (the fixed-frequency design point is the
    degenerate nominal OPP), the target slice is priced at each OPP
    through the stacked engine, and each governor settles per its own
    rule: ``fixed``/``performance`` at the nominal OPP, ``powersave`` at
    the bottom, ``ondemand`` at the lowest OPP keeping its two-point
    frequency-response utilization under the up-threshold, and the
    deadline policies race (top OPP, idle out the slack) or pace (the
    slowest OPP that still meets ``deadline_s``).  ``fixed`` points are
    bitwise the Opt points of :func:`evaluate_space` on the same
    configs — the governor axis never perturbs the fixed plane.
    """
    from .power import dvfs

    configs = tuple(configs) if configs is not None else default_space()
    if not configs:
        raise ValueError("need at least one SoCConfig")
    if governors is None:
        governors = (dvfs.GOVERNOR_DEFAULT,) + dvfs.FREQUENCY_GOVERNORS
        if deadline_s is not None:
            governors = governors + dvfs.DEADLINE_POLICIES
    governors = tuple(governors)
    for governor in governors:
        if governor not in dvfs.GOVERNORS:
            raise ValueError(
                f"unknown governor {governor!r}; choose from {dvfs.GOVERNORS}"
            )
        if governor in dvfs.DEADLINE_POLICIES and deadline_s is None:
            raise ValueError(f"governor {governor!r} needs deadline_s")
    if deadline_s is not None and deadline_s <= 0:
        raise ValueError("deadline_s must be positive")
    precisions = tuple(precisions)
    benchmarks = tuple(benchmarks)
    if benchmark != AGGREGATE and benchmark not in benchmarks:
        raise ValueError(
            f"benchmark {benchmark!r} not in the evaluated benchmarks"
            f" (or {AGGREGATE!r})"
        )
    if space is None:
        space = DesignSpace(
            benchmarks=benchmarks, precisions=precisions, scale=scale, seed=seed
        )
    elif (
        space.benchmarks != benchmarks
        or space.precisions != precisions
        or space.scale != scale
        or space.seed != seed
    ):
        raise ValueError(
            "prebuilt space does not match the requested grid "
            "(benchmarks/precisions/scale/seed)"
        )
    if space._gpu_stack is None:
        raise ValueError("the DVFS sweep needs at least one GPU cell")

    points: list[DvfsDesignPoint] = []
    for config in configs:
        platform = config.platform(space.base)
        dram = platform.dram_model()
        table = dvfs.MALI_T604_OPPS.rescaled(platform.mali.clock_hz)
        slices = {
            opp: _dvfs_opp_slices(space, platform, dram, table, opp, benchmark)
            for opp in table.points
        }
        idle_w = platform.rails.board_idle_w
        for governor in governors:
            for precision in (p.value for p in precisions):
                def at(opp):
                    return slices[opp].get(
                        precision, (float("inf"), 0.0, float("inf"), False)
                    )

                if governor in (dvfs.GOVERNOR_DEFAULT, "performance"):
                    opp = table.nominal
                    seconds, watts, energy, ok = at(opp)
                elif governor == "powersave":
                    opp = table.min
                    seconds, watts, energy, ok = at(opp)
                elif governor == "ondemand":
                    t_slow, _, _, ok_slow = at(table.min)
                    t_fast, _, _, ok_fast = at(table.max)
                    if ok_slow and ok_fast:
                        opp = dvfs.select_opp(
                            table,
                            "ondemand",
                            time_at=lambda o: at(o)[0],
                        )
                    else:
                        opp = table.nominal
                    seconds, watts, energy, ok = at(opp)
                else:  # deadline policies
                    if governor == "race_to_idle":
                        candidates = (table.max,)
                    else:  # pace_to_deadline: slowest OPP meeting the budget
                        candidates = table.points
                    opp = table.max
                    seconds, watts, energy, ok = at(opp)
                    met = False
                    for cand in candidates:
                        s, w, e, feas = at(cand)
                        if feas and s <= deadline_s:
                            opp, seconds, watts, energy, ok = cand, s, w, e, True
                            met = True
                            break
                    if not met:
                        ok = False
                    if ok:
                        energy = energy + (deadline_s - seconds) * idle_w
                    else:
                        seconds, watts, energy = float("inf"), 0.0, float("inf")
                points.append(
                    DvfsDesignPoint(
                        config_name=config.name,
                        governor=governor,
                        precision=precision,
                        opp_hz=opp.frequency_hz,
                        seconds=seconds,
                        watts=watts,
                        energy_j=energy,
                        feasible=ok,
                    )
                )
    return DvfsSpaceResult(
        points=tuple(points),
        governors=governors,
        precisions=tuple(p.value for p in precisions),
        benchmark=benchmark,
        deadline_s=deadline_s,
        scale=scale,
        seed=seed,
    )


# ---------------------------------------------------------------------------
# model-only speedup helper (the whatif/sensitivity seam)
# ---------------------------------------------------------------------------


def opt_over_serial(
    benchmark: str,
    platforms: dict,
    *,
    precision: Precision = Precision.SINGLE,
    scale: float = 0.5,
    seed: int = 1234,
    serial: str = "first",
) -> dict:
    """Model-only Opt-over-Serial speedup per platform variant.

    The single batched-pricing path behind :func:`repro.whatif.estimate_speedups`
    and the sensitivity probes: every number comes from each platform's
    ``pricing_model()`` — tuner pricing for the Opt candidate, the CPU
    pricer for the Serial baseline — with no functional NumPy execution
    and no meter.  ``serial="first"`` takes the baseline from the first
    platform (comparable speedups across variants, the what-if
    convention); ``serial="each"`` re-prices it per platform (the
    sensitivity convention, where the CPU side is perturbed too).
    ``None`` marks a variant with no feasible Opt candidate.
    """
    from .pricing.grid import estimate_cpu_seconds, estimate_opt_seconds

    if not platforms:
        raise ValueError("need at least one platform")
    if serial not in ("first", "each"):
        raise ValueError(f"serial must be 'first' or 'each', got {serial!r}")
    out: dict = {}
    serial_seconds = None
    for name, platform in platforms.items():
        bench = create(
            benchmark, precision=precision, scale=scale, seed=seed, platform=platform
        )
        if serial == "each" or serial_seconds is None:
            serial_seconds = estimate_cpu_seconds(bench)
        opt_seconds = estimate_opt_seconds(bench)
        out[name] = None if opt_seconds is None else serial_seconds / opt_seconds
    return out
